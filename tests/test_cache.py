"""Persistent tuning cache: round-trips, key sensitivity, and corrupt or
stale entries falling back to a recompile."""

import json
import pickle

import numpy as np

from repro.arith import Var
from repro.types import ArrayType, FLOAT
from repro.ir.nodes import Lambda, Param, UserFun
from repro.ir.dsl import map_
from repro.cache import CACHE_VERSION, TuningCache, fingerprint_inputs
from repro.compiler.codegen import compile_kernel
from repro.compiler.options import CompilerOptions
from repro.rewrite.lowering import lower_to_global


def _program(param_name="x"):
    n = Var("N")
    x = Param(ArrayType(FLOAT, n), param_name)
    double = UserFun("dbl", ["v"], "return v * 2.0f;", [FLOAT], FLOAT,
                     py=lambda v: v * 2.0)
    return Lambda([x], map_(double)(x))


def _compiled():
    return compile_kernel(lower_to_global(_program()), CompilerOptions())


class TestKernelRoundTrip:
    def test_put_get(self, tmp_path):
        cache = TuningCache(tmp_path)
        kernel = _compiled()
        key = cache.kernel_key(_program(), CompilerOptions(), {"N": 64})
        assert cache.get_kernel(key) is None
        cache.put_kernel(key, kernel)
        restored = cache.get_kernel(key)
        assert restored is not None
        assert restored.source == kernel.source
        assert [p.name for p in restored.params] == [
            p.name for p in kernel.params
        ]
        assert cache.stats.kernel_hits == 1
        assert cache.stats.kernel_misses == 1

    def test_key_is_alpha_independent(self, tmp_path):
        cache = TuningCache(tmp_path)
        opts, env = CompilerOptions(), {"N": 64}
        assert cache.kernel_key(_program("x"), opts, env) == cache.kernel_key(
            _program("renamed"), opts, env
        )

    def test_key_depends_on_options_and_sizes(self, tmp_path):
        cache = TuningCache(tmp_path)
        prog = _program()
        base = cache.kernel_key(prog, CompilerOptions(), {"N": 64})
        assert base != cache.kernel_key(
            prog, CompilerOptions(local_size=(32, 1, 1)), {"N": 64}
        )
        assert base != cache.kernel_key(prog, CompilerOptions(), {"N": 128})


class TestCorruptAndStale:
    def test_corrupt_kernel_entry_is_a_miss(self, tmp_path):
        cache = TuningCache(tmp_path)
        key = cache.kernel_key(_program(), CompilerOptions(), {"N": 64})
        cache.put_kernel(key, _compiled())
        path = cache._path(key, "kernel")
        path.write_bytes(b"not a pickle at all")
        assert cache.get_kernel(key) is None
        assert cache.stats.invalid == 1
        assert not path.exists()  # dropped, so the recompile can re-fill
        cache.put_kernel(key, _compiled())
        assert cache.get_kernel(key) is not None

    def test_truncated_pickle_is_a_miss(self, tmp_path):
        cache = TuningCache(tmp_path)
        key = cache.kernel_key(_program(), CompilerOptions(), {"N": 64})
        cache.put_kernel(key, _compiled())
        path = cache._path(key, "kernel")
        path.write_bytes(path.read_bytes()[:20])
        assert cache.get_kernel(key) is None

    def test_stale_version_is_a_miss(self, tmp_path):
        cache = TuningCache(tmp_path)
        key = cache.kernel_key(_program(), CompilerOptions(), {"N": 64})
        entry = {"version": CACHE_VERSION + 1, "key": key, "kernel": _compiled()}
        cache._path(key, "kernel").parent.mkdir(parents=True, exist_ok=True)
        cache._path(key, "kernel").write_bytes(pickle.dumps(entry))
        assert cache.get_kernel(key) is None

    def test_corrupt_cycles_entry_is_a_miss(self, tmp_path):
        cache = TuningCache(tmp_path)
        key = "ab" * 32
        cache.put_cycles(key, 123.0)
        assert cache.get_cycles(key) == 123.0
        cache._path(key, "cycles.json").write_text("{truncated")
        assert cache.get_cycles(key) is None

    def test_cycles_key_mismatch_is_stale(self, tmp_path):
        cache = TuningCache(tmp_path)
        key = "cd" * 32
        entry = {"version": CACHE_VERSION, "key": "different", "cycles": 1.0}
        cache.root.mkdir(parents=True, exist_ok=True)
        cache._path(key, "cycles.json").write_text(json.dumps(entry))
        assert cache.get_cycles(key) is None


class TestFingerprintAndClear:
    def test_fingerprint_sensitive_to_values(self):
        a = {"x": np.arange(8.0)}
        b = {"x": np.arange(8.0) + 1}
        assert fingerprint_inputs(a) != fingerprint_inputs(b)
        assert fingerprint_inputs(a) == fingerprint_inputs(
            {"x": np.arange(8.0)}
        )

    def test_fingerprint_includes_scalars(self):
        assert fingerprint_inputs({"a": 1.5}) != fingerprint_inputs({"a": 2.5})

    def test_clear_removes_entries(self, tmp_path):
        cache = TuningCache(tmp_path)
        key = cache.kernel_key(_program(), CompilerOptions(), {"N": 64})
        cache.put_kernel(key, _compiled())
        cache.put_cycles("ef" * 32, 9.0)
        assert cache.clear() == 2
        assert cache.get_kernel(key) is None
