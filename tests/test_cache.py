"""Persistent tuning cache: round-trips, key sensitivity, corrupt or
stale entries falling back to a recompile (with quarantine and
classified stats), LRU eviction under a size cap, and crash/concurrency
safety (multi-process writer hammer, ``kill -9`` mid-write)."""

import hashlib
import json
import multiprocessing
import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.arith import Var
from repro.types import ArrayType, FLOAT
from repro.ir.nodes import Lambda, Param, UserFun
from repro.ir.dsl import map_
from repro.cache import (
    CACHE_VERSION,
    QUARANTINE_DIR,
    TuningCache,
    fingerprint_inputs,
)
from repro.compiler.codegen import compile_kernel
from repro.compiler.options import CompilerOptions
from repro.opencl.interp import Counters
from repro.rewrite.lowering import lower_to_global


def _program(param_name="x"):
    n = Var("N")
    x = Param(ArrayType(FLOAT, n), param_name)
    double = UserFun("dbl", ["v"], "return v * 2.0f;", [FLOAT], FLOAT,
                     py=lambda v: v * 2.0)
    return Lambda([x], map_(double)(x))


def _compiled():
    return compile_kernel(lower_to_global(_program()), CompilerOptions())


class TestKernelRoundTrip:
    def test_put_get(self, tmp_path):
        cache = TuningCache(tmp_path)
        kernel = _compiled()
        key = cache.kernel_key(_program(), CompilerOptions(), {"N": 64})
        assert cache.get_kernel(key) is None
        cache.put_kernel(key, kernel)
        restored = cache.get_kernel(key)
        assert restored is not None
        assert restored.source == kernel.source
        assert [p.name for p in restored.params] == [
            p.name for p in kernel.params
        ]
        assert cache.stats.kernel_hits == 1
        assert cache.stats.kernel_misses == 1

    def test_key_is_alpha_independent(self, tmp_path):
        cache = TuningCache(tmp_path)
        opts, env = CompilerOptions(), {"N": 64}
        assert cache.kernel_key(_program("x"), opts, env) == cache.kernel_key(
            _program("renamed"), opts, env
        )

    def test_key_depends_on_options_and_sizes(self, tmp_path):
        cache = TuningCache(tmp_path)
        prog = _program()
        base = cache.kernel_key(prog, CompilerOptions(), {"N": 64})
        assert base != cache.kernel_key(
            prog, CompilerOptions(local_size=(32, 1, 1)), {"N": 64}
        )
        assert base != cache.kernel_key(prog, CompilerOptions(), {"N": 128})


class TestCorruptAndStale:
    def test_corrupt_kernel_entry_is_a_miss(self, tmp_path):
        cache = TuningCache(tmp_path)
        key = cache.kernel_key(_program(), CompilerOptions(), {"N": 64})
        cache.put_kernel(key, _compiled())
        path = cache._path(key, "kernel")
        path.write_bytes(b"not a pickle at all")
        assert cache.get_kernel(key) is None
        assert cache.stats.invalid == 1
        assert not path.exists()  # dropped, so the recompile can re-fill
        cache.put_kernel(key, _compiled())
        assert cache.get_kernel(key) is not None

    def test_truncated_pickle_is_a_miss(self, tmp_path):
        cache = TuningCache(tmp_path)
        key = cache.kernel_key(_program(), CompilerOptions(), {"N": 64})
        cache.put_kernel(key, _compiled())
        path = cache._path(key, "kernel")
        path.write_bytes(path.read_bytes()[:20])
        assert cache.get_kernel(key) is None

    def test_stale_version_is_a_miss(self, tmp_path):
        cache = TuningCache(tmp_path)
        key = cache.kernel_key(_program(), CompilerOptions(), {"N": 64})
        entry = {"version": CACHE_VERSION + 1, "key": key, "kernel": _compiled()}
        cache._path(key, "kernel").parent.mkdir(parents=True, exist_ok=True)
        cache._path(key, "kernel").write_bytes(pickle.dumps(entry))
        assert cache.get_kernel(key) is None

    def test_corrupt_cycles_entry_is_a_miss(self, tmp_path):
        cache = TuningCache(tmp_path)
        key = "ab" * 32
        cache.put_cycles(key, 123.0)
        assert cache.get_cycles(key) == 123.0
        cache._path(key, "cycles.json").write_text("{truncated")
        assert cache.get_cycles(key) is None

    def test_cycles_key_mismatch_is_stale(self, tmp_path):
        cache = TuningCache(tmp_path)
        key = "cd" * 32
        entry = {"version": CACHE_VERSION, "key": "different", "cycles": 1.0}
        cache.root.mkdir(parents=True, exist_ok=True)
        cache._path(key, "cycles.json").write_text(json.dumps(entry))
        assert cache.get_cycles(key) is None


class TestFingerprintAndClear:
    def test_fingerprint_sensitive_to_values(self):
        a = {"x": np.arange(8.0)}
        b = {"x": np.arange(8.0) + 1}
        assert fingerprint_inputs(a) != fingerprint_inputs(b)
        assert fingerprint_inputs(a) == fingerprint_inputs(
            {"x": np.arange(8.0)}
        )

    def test_fingerprint_includes_scalars(self):
        assert fingerprint_inputs({"a": 1.5}) != fingerprint_inputs({"a": 2.5})

    def test_clear_removes_entries(self, tmp_path):
        cache = TuningCache(tmp_path)
        key = cache.kernel_key(_program(), CompilerOptions(), {"N": 64})
        cache.put_kernel(key, _compiled())
        cache.put_cycles("ef" * 32, 9.0)
        assert cache.clear() == 2
        assert cache.get_kernel(key) is None


class TestQuarantineClassification:
    """Failing entries are classified and moved aside, never silently
    unlinked: corrupt (undecodable) vs stale (outdated) vs I/O error."""

    def _cycles_path(self, cache, key="ab" * 32, value=7.0):
        cache.put_cycles(key, value)
        return key, cache._path(key, "cycles.json")

    def test_corrupt_entry_lands_in_quarantine(self, tmp_path):
        cache = TuningCache(tmp_path)
        key, path = self._cycles_path(cache)
        path.write_bytes(b"garbage, no header")
        assert cache.get_cycles(key) is None
        assert not path.exists()
        (qfile,) = cache.quarantined_entries()
        assert qfile.parent.name == QUARANTINE_DIR
        assert qfile.name == path.name + ".corrupt"
        assert cache.stats.corrupt_entries == 1
        assert cache.stats.stale_entries == 0
        assert cache.stats.quarantined == cache.stats.invalid == 1

    def test_checksum_mismatch_is_corrupt(self, tmp_path):
        cache = TuningCache(tmp_path)
        key, path = self._cycles_path(cache)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip one payload byte under a valid header
        path.write_bytes(bytes(raw))
        assert cache.get_cycles(key) is None
        assert cache.stats.corrupt_entries == 1
        (qfile,) = cache.quarantined_entries()
        assert qfile.name.endswith(".corrupt")

    def test_old_format_version_is_stale(self, tmp_path):
        cache = TuningCache(tmp_path)
        key, path = self._cycles_path(cache)
        body = json.dumps(
            {"version": CACHE_VERSION - 1, "key": key, "cycles": 7.0}
        ).encode()
        digest = hashlib.sha256(body).hexdigest()
        path.write_bytes(f"repro-cache {CACHE_VERSION - 1} {digest}\n".encode() + body)
        assert cache.get_cycles(key) is None
        assert cache.stats.stale_entries == 1
        assert cache.stats.corrupt_entries == 0
        (qfile,) = cache.quarantined_entries()
        assert qfile.name.endswith(".stale")

    def test_io_error_is_not_corruption(self, tmp_path):
        cache = TuningCache(tmp_path)
        key = "ab" * 32
        # A directory where the entry file should be: read_bytes raises
        # IsADirectoryError (an OSError), which must count as an I/O
        # miss, not send anything to quarantine.
        cache.root.mkdir(parents=True, exist_ok=True)
        cache._path(key, "cycles.json").mkdir()
        assert cache.get_cycles(key) is None
        assert cache.stats.io_errors == 1
        assert cache.stats.quarantined == 0
        assert cache.quarantined_entries() == []

    def test_quarantined_entry_can_be_refilled(self, tmp_path):
        cache = TuningCache(tmp_path)
        key, path = self._cycles_path(cache)
        path.write_bytes(b"junk")
        assert cache.get_cycles(key) is None
        cache.put_cycles(key, 9.0)
        assert cache.get_cycles(key) == 9.0
        assert len(cache.quarantined_entries()) == 1

    def test_clear_can_keep_the_quarantine(self, tmp_path):
        cache = TuningCache(tmp_path)
        key, path = self._cycles_path(cache)
        path.write_bytes(b"junk")
        cache.get_cycles(key)
        cache.put_cycles("cd" * 32, 1.0)
        cache.clear(include_quarantine=False)
        assert len(cache.quarantined_entries()) == 1
        cache.clear()
        assert cache.quarantined_entries() == []


class TestEviction:
    """LRU size cap: least-recently-*used* entries go first, hits
    refresh recency, crash-leftover temp files are swept."""

    @staticmethod
    def _fill(cache, names, t0=1_000_000_000.0):
        """Write one cycles entry per name with increasing mtimes."""
        paths = {}
        for i, name in enumerate(names):
            key = hashlib.sha256(name.encode()).hexdigest()
            cache.put_cycles(key, float(i))
            path = cache._path(key, "cycles.json")
            os.utime(path, (t0 + i, t0 + i))
            paths[name] = (key, path)
        return paths

    def test_oldest_entry_evicted_first(self, tmp_path):
        cache = TuningCache(tmp_path)
        paths = self._fill(cache, ["a", "b", "c"])
        entry_size = paths["a"][1].stat().st_size
        cache.max_bytes = int(entry_size * 3.5)
        self._fill(cache, ["d"], t0=2_000_000_000.0)  # triggers eviction
        assert not paths["a"][1].exists()
        assert paths["b"][1].exists()
        assert paths["c"][1].exists()
        assert cache.stats.evictions == 1

    def test_hit_refreshes_recency(self, tmp_path):
        cache = TuningCache(tmp_path)
        paths = self._fill(cache, ["a", "b", "c"])
        assert cache.get_cycles(paths["a"][0]) == 0.0  # refresh "a"
        entry_size = paths["a"][1].stat().st_size
        cache.max_bytes = int(entry_size * 3.5)
        self._fill(cache, ["d"], t0=2_000_000_000.0)
        # "b" is now the least recently used, not "a".
        assert paths["a"][1].exists()
        assert not paths["b"][1].exists()
        assert cache.stats.evictions == 1

    def test_no_cap_means_no_eviction(self, tmp_path):
        cache = TuningCache(tmp_path)  # max_bytes 0 = unlimited
        paths = self._fill(cache, [f"n{i}" for i in range(8)])
        assert all(p.exists() for _, p in paths.values())
        assert cache.stats.evictions == 0

    def test_quarantine_does_not_count_against_the_cap(self, tmp_path):
        cache = TuningCache(tmp_path)
        paths = self._fill(cache, ["a", "b"])
        paths["a"][1].write_bytes(b"junk")
        assert cache.get_cycles(paths["a"][0]) is None  # quarantined
        entry_size = paths["b"][1].stat().st_size
        cache.max_bytes = entry_size * 10
        self._fill(cache, ["c"], t0=2_000_000_000.0)
        assert paths["b"][1].exists()
        assert cache.stats.evictions == 0

    def test_stale_tmp_files_are_swept(self, tmp_path):
        cache = TuningCache(tmp_path)
        cache.root.mkdir(parents=True, exist_ok=True)
        old_tmp = cache.root / ".tmp-crashed"
        old_tmp.write_bytes(b"partial write of a killed process")
        ancient = time.time() - 7200
        os.utime(old_tmp, (ancient, ancient))
        fresh_tmp = cache.root / ".tmp-inflight"
        fresh_tmp.write_bytes(b"a write in progress right now")
        cache.put_cycles("ab" * 32, 1.0)
        assert not old_tmp.exists()
        assert fresh_tmp.exists()


# ---------------------------------------------------------------------------
# multi-process safety (workers must be module-level for fork/spawn)
# ---------------------------------------------------------------------------

def _hammer_worker(root, worker_id, n_ops):
    """Interleave writes, reads and evictions against a shared store."""
    cache = TuningCache(root, max_bytes=8 * 1024)
    for i in range(n_ops):
        key = hashlib.sha256(f"{worker_id}:{i}".encode()).hexdigest()
        cache.put_cycles(key, float(i))
        value = cache.get_cycles(key)
        # Concurrent eviction may have removed it (a miss), but a
        # present entry must never read back wrong.
        assert value is None or value == float(i)
    assert cache.stats.quarantined == 0


def _sigkill_worker(root):
    """Write large run entries forever (until killed)."""
    cache = TuningCache(root)
    payload = np.arange(250_000, dtype=np.float64)  # ~2 MB per entry
    i = 0
    while True:
        key = hashlib.sha256(f"victim:{i}".encode()).hexdigest()
        cache.put_run(key, payload, Counters())
        i += 1


class TestMultiProcessSafety:
    def test_concurrent_writer_hammer(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_hammer_worker, args=(tmp_path, w, 25))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        # Every surviving entry must validate cleanly in a fresh cache.
        cache = TuningCache(tmp_path)
        suffix = ".cycles.json"
        keys = [
            p.name[: -len(suffix)]
            for p in tmp_path.iterdir()
            if p.name.endswith(suffix)
        ]
        assert keys, "the hammer must leave some entries behind"
        for key in keys:
            assert cache.get_cycles(key) is not None
        assert cache.stats.quarantined == 0
        assert cache.quarantined_entries() == []

    def test_sigkill_mid_write_leaves_no_corrupt_entries(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_sigkill_worker, args=(tmp_path,))
        proc.start()
        try:
            deadline = time.time() + 30
            while time.time() < deadline:
                if len(list(tmp_path.glob("*.run"))) >= 2:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("writer produced no entries before the deadline")
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=30)
        # Atomic rename means every visible .run entry is complete; the
        # kill can leave at most a stale .tmp- file (swept later).
        cache = TuningCache(tmp_path)
        runs = sorted(tmp_path.glob("*.run"))
        assert runs
        for path in runs:
            key = path.name[: -len(".run")]
            result = cache.get_run(key)
            assert result is not None
            output, counters = result
            np.testing.assert_array_equal(
                output, np.arange(250_000, dtype=np.float64)
            )
        assert cache.stats.quarantined == 0
        assert cache.quarantined_entries() == []
        # And the survivor store stays fully functional.
        cache.put_cycles("ab" * 32, 3.0)
        assert cache.get_cycles("ab" * 32) == 3.0
