"""Integration tests over the benchmark suite.

Every benchmark's differential-testing contract: NumPy oracle ≡
hand-written reference kernel on the simulator ≡ generated kernel on the
simulator (at every optimization level for a representative subset).
"""

import numpy as np
import pytest

from repro.compiler.options import OPTIMIZATION_LEVELS
from repro.benchsuite.common import ALL_BENCHMARKS, get_benchmark
from repro.benchsuite.figure6 import check_figure6, figure6_trace
from repro.benchsuite.figure8 import measure_benchmark
from repro.benchsuite.table1 import run_table1


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_benchmark_correctness_small(name):
    get_benchmark(name).verify("small")


@pytest.mark.parametrize("name", ["nn", "gemv", "convolution", "mm-amd"])
def test_benchmark_correct_at_every_level(name):
    bench = get_benchmark(name)
    inputs, size_env = bench.inputs_for("small")
    expected = bench.oracle(inputs, size_env)
    for level_name, factory in OPTIMIZATION_LEVELS.items():
        out, _ = bench.run_generated(inputs, size_env, options_factory=factory)
        np.testing.assert_allclose(
            out, expected, rtol=bench.rtol, atol=1e-7,
            err_msg=f"{name} wrong at level {level_name}",
        )


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_high_level_program_semantics(name):
    """The portable high-level IL evaluates to the oracle's answer on the
    reference interpreter (for interpreter-friendly sizes)."""
    from repro.ir.interp import apply_fun
    from repro.ir.nodes import Param
    from repro.types import ArrayType, VectorType

    bench = get_benchmark(name)
    inputs, size_env = bench.inputs_for("small")
    if name in ("nbody-nvidia", "nbody-amd", "mriq", "md"):
        pytest.skip("vector-heavy interpreters covered by dedicated tests")
    program = bench.high_level(size_env)

    stage = bench.stages[0]
    args = []
    for p, pname in zip(program.params, stage.param_names):
        value = inputs[pname]
        if isinstance(value, np.ndarray):
            t = p.type
            if isinstance(t, ArrayType) and isinstance(t.elem, ArrayType):
                rows = int(
                    np.prod(value.shape[:-1])
                    if value.ndim > 1
                    else len(value) // int(t.elem.length.evaluate(size_env))
                )
                args.append(np.asarray(value).reshape(rows, -1).tolist())
            else:
                args.append(np.asarray(value).ravel().tolist())
        else:
            args.append(value)
    result = apply_fun(program, args, size_env)
    flat = np.asarray(result, dtype=float).ravel()
    expected = bench.oracle(inputs, size_env)
    np.testing.assert_allclose(flat, expected, rtol=1e-6, atol=1e-7)


def test_table1_has_all_rows():
    rows = run_table1()
    assert [r.benchmark for r in rows] == ALL_BENCHMARKS
    for row in rows:
        assert row.loc_opencl > 0
        assert row.loc_high_level > 0
        assert row.loc_low_level >= row.loc_high_level


def test_figure6_lands_on_paper_line3():
    assert check_figure6()
    trace = figure6_trace()
    # The raw expression is dramatically longer than the simplified one.
    assert len(str(trace.raw)) > 4 * len(str(trace.simplified))


def test_figure8_cells_structure():
    cells = measure_benchmark(get_benchmark("nn"), "small")
    assert len(cells) == 6  # 3 levels x 2 devices
    assert {c.level for c in cells} == {"none", "barrier_cf", "all"}
    assert {c.device for c in cells} == {"nvidia", "amd"}
    for cell in cells:
        assert cell.relative_performance > 0


def test_optimizations_never_hurt_for_gemv():
    cells = measure_benchmark(get_benchmark("gemv"), "small")
    by_level = {}
    for c in cells:
        by_level.setdefault(c.level, []).append(c.relative_performance)
    assert np.mean(by_level["all"]) >= np.mean(by_level["barrier_cf"])
    assert np.mean(by_level["barrier_cf"]) >= np.mean(by_level["none"]) - 1e-9
