"""Tests for the dependent type system."""

import pytest

from repro.arith import Cst, Var
from repro.types import (
    ArrayType,
    FLOAT,
    INT,
    ScalarType,
    TupleType,
    VectorType,
    array,
    element_count,
    float4,
    size_in_bytes,
)
from repro.types.dtypes import scalar_base


class TestScalar:
    def test_equality(self):
        assert FLOAT == ScalarType("float", 4)
        assert FLOAT != INT

    def test_repr(self):
        assert str(FLOAT) == "float"


class TestVector:
    def test_name(self):
        assert float4.name == "float4"

    def test_bad_width(self):
        with pytest.raises(ValueError):
            VectorType(FLOAT, 5)

    def test_size(self):
        assert size_in_bytes(float4) == Cst(16)


class TestTuple:
    def test_name_mangling(self):
        t = TupleType([FLOAT, FLOAT])
        assert t.name == "Tuple2_float_float"

    def test_requires_two(self):
        with pytest.raises(ValueError):
            TupleType([FLOAT])

    def test_size(self):
        assert size_in_bytes(TupleType([FLOAT, INT])) == Cst(8)


class TestArray:
    def test_symbolic_length(self):
        n = Var("N")
        t = ArrayType(FLOAT, n)
        assert str(t) == "[float]_N"

    def test_nested_helper(self):
        t = array(FLOAT, 4, 8)
        assert isinstance(t, ArrayType)
        assert t.length == Cst(4)
        assert isinstance(t.elem, ArrayType)
        assert t.elem.length == Cst(8)

    def test_equality_up_to_simplification(self):
        n = Var("N")
        a = ArrayType(FLOAT, n * 2)
        b = ArrayType(FLOAT, Cst(2) * n)
        assert a == b

    def test_split_length_algebra(self):
        # [float]_N split by 128: [[float]_128]_{N/128}
        n = Var("N")
        t = ArrayType(ArrayType(FLOAT, 128), n // 128)
        assert size_in_bytes(t) == (n // 128) * 128 * 4

    def test_element_count(self):
        assert element_count(array(FLOAT, 4, 8)) == Cst(32)
        assert element_count(array(float4, 8)) == Cst(32)

    def test_scalar_base(self):
        assert scalar_base(array(float4, 8)) == FLOAT
        with pytest.raises(TypeError):
            scalar_base(TupleType([FLOAT, INT]))
