"""Tests for the IL pretty-printer and the C AST printer."""

import pytest

from repro.arith import Var
from repro.types import ArrayType, FLOAT
from repro.ir.nodes import Lambda, Param
from repro.ir.dsl import (
    add,
    as_scalar,
    as_vector,
    compose,
    f32,
    gather,
    id_fun,
    iterate,
    join,
    map_lcl,
    map_seq,
    map_seq_unroll,
    map_wrg,
    reduce_seq,
    reduce_seq_unroll,
    scatter,
    slide,
    split,
    to_global,
    to_local,
    transpose,
)
from repro.ir.patterns import reverse_indices
from repro.ir.printer import print_decl, print_expr, program_lines
from repro.compiler import cast as c

from tests.programs import partial_dot


class TestILPrinter:
    def test_listing1_mentions_every_pattern(self):
        text = print_decl(partial_dot())
        for token in ("mapWrg", "mapLcl", "mapSeq", "reduceSeq", "iterate",
                      "split", "join", "toLocal", "toGlobal", "zip"):
            assert token in text, f"missing {token}"

    def test_layout_patterns_print_compactly(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        f = compose(
            join(), gather(reverse_indices()), scatter(reverse_indices()),
            transpose(), slide(3, 1), as_scalar(), as_vector(4), split(8),
        )
        text = print_decl(Lambda([x], f(x)))
        for token in ("join", "gather", "scatter", "transpose", "slide",
                      "asScalar", "asVector4", "split8"):
            assert token in text

    def test_unroll_variants_distinct(self):
        assert "mapSeqUnroll" in print_decl(map_seq_unroll(id_fun()))
        assert "reduceSeqUnroll" in print_decl(
            reduce_seq_unroll(add(), f32(0.0))
        )

    def test_program_lines_counts_something(self):
        assert program_lines(partial_dot()) >= 8

    def test_print_expr_param(self):
        p = Param(FLOAT, "v")
        assert print_expr(p).strip() == "v"


class TestCASTPrinter:
    def test_expression_precedence(self):
        e = c.CBinOp("*", c.CBinOp("+", c.CIdent("a"), c.CIdent("b")),
                     c.CIdent("d"))
        assert c.print_expr(e) == "(a + b) * d"

    def test_no_redundant_parens(self):
        e = c.CBinOp("+", c.CBinOp("*", c.CIdent("a"), c.CIdent("b")),
                     c.CIdent("d"))
        assert c.print_expr(e) == "a * b + d"

    def test_index_and_member(self):
        e = c.CMember(c.CIndex(c.CIdent("xs"), c.CInt(3)), "x")
        assert c.print_expr(e) == "xs[3].x"

    def test_float_literal_suffix(self):
        assert c.print_expr(c.CFloat(0.5)).endswith("f")

    def test_vector_literal(self):
        e = c.CVectorLiteral("float2", [c.CFloat(1.0), c.CFloat(2.0)])
        assert c.print_expr(e) == "((float2)(1.0f, 2.0f))"

    def test_for_statement(self):
        body = c.CBlock([c.CAssign(c.CIdent("s"), c.CIdent("i"), "+=")])
        loop = c.CFor(
            c.CDecl("int", "i", init=c.CInt(0)),
            c.CBinOp("<", c.CIdent("i"), c.CInt(4)),
            c.CAssign(c.CIdent("i"), c.CInt(1), "+="),
            body,
        )
        text = c.print_stmt(loop)
        assert text.startswith("for (int i = 0; i < 4; i += 1) {")
        assert "s += i;" in text

    def test_if_else(self):
        stmt = c.CIf(
            c.CBinOp("<", c.CIdent("i"), c.CInt(2)),
            c.CBlock([c.CReturn(c.CInt(1))]),
            c.CBlock([c.CReturn(c.CInt(0))]),
        )
        text = c.print_stmt(stmt)
        assert "else {" in text

    def test_local_decl_keeps_qualifier(self):
        decl = c.CDecl("float", "tmp", qualifier="local", array_size=64)
        assert c.print_stmt(decl) == "local float tmp[64];"

    def test_private_qualifier_dropped(self):
        decl = c.CDecl("float", "acc", qualifier="private")
        assert c.print_stmt(decl) == "float acc;"

    def test_barrier(self):
        assert c.print_stmt(c.CBarrier()) == "barrier(CLK_LOCAL_MEM_FENCE);"

    def test_kernel_signature(self):
        fn = c.CFunctionDef(
            "void", "K",
            [c.CParam("float", "x", ("const", "global"), True, True),
             c.CParam("int", "n")],
            c.CBlock([]),
            is_kernel=True,
        )
        text = c.print_function(fn)
        assert text.startswith("kernel void K(")
        assert "const global float *" in text
        assert "restrict x" in text

    def test_roundtrip_through_parser(self):
        """Printed programs parse back to the same structure."""
        from repro.opencl.cparser import parse

        fn = c.CFunctionDef(
            "void", "K",
            [c.CParam("float", "x", ("global",), True)],
            c.CBlock([
                c.CDecl("int", "i", init=c.CCall("get_global_id", [c.CInt(0)])),
                c.CAssign(c.CIndex(c.CIdent("x"), c.CIdent("i")),
                          c.CFloat(1.0)),
            ]),
            is_kernel=True,
        )
        program = parse(c.print_function(fn))
        assert program.kernels == ["K"]
        parsed = program.functions["K"]
        assert len(parsed.body.stmts) == 2
