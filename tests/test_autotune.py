"""Tests for the schedule auto-tuner."""

import numpy as np
import pytest

from repro.arith import Var
from repro.types import ArrayType, FLOAT
from repro.ir.nodes import Lambda, Param, UserFun
from repro.ir.dsl import map_
from repro.rewrite.autotune import (
    Candidate,
    TuningError,
    autotune,
    default_candidates,
    describe,
)


def _program():
    n = Var("N")
    x = Param(ArrayType(FLOAT, n), "x")
    double = UserFun("dbl", ["v"], "return v * 2.0f;", [FLOAT], FLOAT,
                     py=lambda v: v * 2.0)
    return Lambda([x], map_(double)(x))


def test_default_candidates_cover_both_shapes():
    candidates = default_candidates(_program(), 256)
    labels = [c.label for c in candidates]
    assert "mapGlb" in labels
    assert any("mapWrg" in label for label in labels)


def test_autotune_ranks_and_verifies():
    n = 256
    data = np.arange(n, dtype=float)
    results = autotune(_program(), {"x": data}, {"N": n})
    assert len(results) >= 2
    # Ranking is by parallelism-aware runtime, not by total cycles: a
    # schedule doing slightly more work over more threads may win.
    runtimes = [r.runtime for r in results]
    assert runtimes == sorted(runtimes)
    assert all(r.runtime <= r.cycles for r in results)
    assert "kernel void" in results[0].kernel_source
    text = describe(results)
    assert "schedule ranking" in text


def test_autotune_rejects_empty_candidate_list():
    with pytest.raises(TuningError):
        autotune(_program(), {"x": np.ones(8)}, {"N": 8}, candidates=[])


def test_autotune_skips_uncompilable_candidates():
    n = 64
    data = np.ones(n)
    good = default_candidates(_program(), n, chunks=(32,))
    from repro.ir.dsl import join, split, pipe

    x = Param(ArrayType(FLOAT, Var("N")), "x")
    broken = Candidate(
        "pure-view (uncompilable)",
        Lambda([x], pipe(x, split(8), join())),
        (8, 1, 1),
        (n, 1, 1),
    )
    results = autotune(
        _program(), {"x": data}, {"N": n}, candidates=[broken] + good
    )
    assert all("uncompilable" not in r.candidate.label for r in results)
    assert results
