"""Tests for the schedule auto-tuner."""

import numpy as np
import pytest

from repro.arith import Var
from repro.types import ArrayType, FLOAT
from repro.ir.nodes import Lambda, Param, UserFun
from repro.ir.dsl import map_
from repro.rewrite.autotune import (
    Candidate,
    TuningError,
    autotune,
    default_candidates,
    describe,
)


def _program():
    n = Var("N")
    x = Param(ArrayType(FLOAT, n), "x")
    double = UserFun("dbl", ["v"], "return v * 2.0f;", [FLOAT], FLOAT,
                     py=lambda v: v * 2.0)
    return Lambda([x], map_(double)(x))


def test_default_candidates_cover_both_shapes():
    candidates = default_candidates(_program(), 256)
    labels = [c.label for c in candidates]
    assert "mapGlb" in labels
    assert any("mapWrg" in label for label in labels)


def test_autotune_ranks_and_verifies():
    n = 256
    data = np.arange(n, dtype=float)
    results = autotune(_program(), {"x": data}, {"N": n})
    assert len(results) >= 2
    # Ranking is by parallelism-aware runtime, not by total cycles: a
    # schedule doing slightly more work over more threads may win.
    runtimes = [r.runtime for r in results]
    assert runtimes == sorted(runtimes)
    assert all(r.runtime <= r.cycles for r in results)
    assert "kernel void" in results[0].kernel_source
    text = describe(results)
    assert "schedule ranking" in text


def test_autotune_rejects_empty_candidate_list():
    with pytest.raises(TuningError):
        autotune(_program(), {"x": np.ones(8)}, {"N": 8}, candidates=[])


def test_autotune_skips_uncompilable_candidates():
    n = 64
    data = np.ones(n)
    good = default_candidates(_program(), n, chunks=(32,))
    from repro.ir.dsl import join, split, pipe

    x = Param(ArrayType(FLOAT, Var("N")), "x")
    broken = Candidate(
        "pure-view (uncompilable)",
        Lambda([x], pipe(x, split(8), join())),
        (8, 1, 1),
        (n, 1, 1),
    )
    results = autotune(
        _program(), {"x": data}, {"N": n}, candidates=[broken] + good
    )
    assert all("uncompilable" not in r.candidate.label for r in results)
    assert results


class TestTile2dMenu:
    """The fixed menu reuses the tile-2d mapping strategy for square
    two-deep map nests (guarded by shape divisibility)."""

    def _mm(self):
        from repro.benchsuite.common import get_benchmark

        bench = get_benchmark("mm-nvidia")
        inputs, size_env = bench.inputs_for("small")
        hl = bench.high_level(size_env)
        flat = {
            p.name: np.asarray(inputs[p.name], dtype=float).ravel()
            for p in hl.params
        }
        return hl, flat, size_env

    def test_menu_includes_tiled_schedules_for_mm(self):
        hl, _, size_env = self._mm()
        labels = [
            c.label for c in default_candidates(hl, 16, size_env=size_env)
        ]
        assert "tile-2d(8x8)" in labels
        assert "tile-2d(8x8,toLocal)" in labels

    def test_menu_guards_on_divisibility(self):
        hl, _, size_env = self._mm()
        from repro.rewrite.autotune import tile_2d_candidates

        assert tile_2d_candidates(hl, size_env, tiles=((5, 5),)) == []
        assert tile_2d_candidates(hl, size_env, tiles=((8, 8),)) != []

    def test_flat_program_gets_no_tiled_candidates(self):
        labels = [
            c.label
            for c in default_candidates(_program(), 256, size_env={"N": 256})
        ]
        assert not any(label.startswith("tile-2d") for label in labels)

    def test_autotune_verifies_and_prefers_the_tiled_schedule(self):
        hl, flat, size_env = self._mm()
        results = autotune(hl, flat, size_env)
        labels = [r.candidate.label for r in results]
        assert "tile-2d(8x8,toLocal)" in labels
        # The staged 2-D tiling must win the fixed menu on estimated
        # runtime (the explorer derives the same schedule; see
        # REWRITE.md) — and autotune verified it bitwise on the way.
        assert results[0].candidate.label == "tile-2d(8x8,toLocal)"
