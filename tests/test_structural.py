"""Structural hash/equality: alpha-equivalence, clone stability, and
sensitivity to rewrites."""

from repro.arith import Var
from repro.types import ArrayType, FLOAT
from repro.ir.nodes import FunCall, Lambda, Param, UserFun
from repro.ir.dsl import add, f32, join, map_, reduce_, split
from repro.ir.structural import canonical, structural_eq, structural_hash
from repro.ir.visit import clone_decl, clone_expr
from repro.rewrite.rules import map_fusion, map_to_seq, split_join
from repro.rewrite.strategies import rewrite_first


def _plus_one():
    return UserFun("plusOne", ["v"], "return v + 1.0f;", [FLOAT], FLOAT,
                   py=lambda v: v + 1.0)


def _program(param_name="x"):
    n = Var("N")
    x = Param(ArrayType(FLOAT, n), param_name)
    return Lambda([x], map_(_plus_one())(x))


class TestAlphaEquivalence:
    def test_parameter_names_do_not_matter(self):
        assert structural_eq(_program("x"), _program("completely_different"))
        assert structural_hash(_program("x")) == structural_hash(_program("y"))

    def test_independent_constructions_are_equal(self):
        assert structural_eq(_program(), _program())

    def test_nested_lambda_renaming(self):
        n = Var("N")

        def build(inner_name):
            x = Param(ArrayType(FLOAT, n), "x")
            p = Param(None, inner_name)
            inner = Lambda([p], FunCall(_plus_one(), [p]))
            return Lambda([x], map_(inner)(x))

        assert structural_eq(build("a"), build("zzz"))

    def test_different_structure_differs(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        mapped = Lambda([x], map_(_plus_one())(x))
        reduced = Lambda([x], reduce_(add(), f32(0.0))(x))
        assert not structural_eq(mapped, reduced)

    def test_different_user_fun_bodies_differ(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        other = UserFun("plusOne", ["v"], "return v + 2.0f;", [FLOAT], FLOAT)
        a = Lambda([x], map_(_plus_one())(x))
        b = Lambda([x], map_(other)(x))
        assert not structural_eq(a, b)

    def test_split_factor_is_part_of_identity(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        a = join()(split(4)(x))
        b = join()(split(8)(x))
        assert canonical(a) != canonical(b)

    def test_parallel_map_dimension_is_part_of_identity(self):
        """``mapGlb(f, 0)`` and ``mapGlb(f, 1)`` are different schedules;
        the explorer's dedup and the on-disk tuning cache must never
        collapse them (likewise for mapWrg/mapLcl)."""
        from repro.ir import patterns as pat

        n = Var("N")
        for cls in (pat.MapGlb, pat.MapWrg, pat.MapLcl):
            x = Param(ArrayType(FLOAT, n), "x")
            dim0 = Lambda([x], FunCall(cls(_plus_one(), 0), [x]))
            dim1 = Lambda([x], FunCall(cls(_plus_one(), 1), [x]))
            assert not structural_eq(dim0, dim1)
            assert structural_hash(dim0) != structural_hash(dim1)
            # ...while equal dims stay alpha-equivalent across clones.
            assert structural_eq(dim0, clone_decl(dim0))


class TestCloneStability:
    def test_hash_stable_across_clone_decl(self):
        prog = _program()
        assert structural_hash(prog) == structural_hash(clone_decl(prog))

    def test_hash_stable_across_clone_expr(self):
        prog = _program()
        assert structural_hash(prog.body) == structural_hash(
            clone_expr(prog.body)
        )

    def test_repeated_clones_stay_equal(self):
        prog = _program()
        current = prog
        for _ in range(4):
            current = clone_decl(current)
        assert structural_eq(prog, current)


class TestRewriteSensitivity:
    def test_rule_application_changes_hash(self):
        prog = _program()
        lowered = rewrite_first(map_to_seq(), prog.body)
        assert lowered is not None
        assert structural_hash(prog.body) != structural_hash(lowered)

    def test_split_join_changes_hash(self):
        prog = _program()
        tiled = rewrite_first(split_join(4), prog.body)
        assert structural_hash(prog.body) != structural_hash(tiled)

    def test_fusion_changes_hash_but_is_self_stable(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        body = map_(_plus_one())(map_(_plus_one())(x))
        fused = rewrite_first(map_fusion(), body)
        assert structural_hash(body) != structural_hash(fused)
        # Cloning the fused program does not change its identity.
        assert structural_hash(fused) == structural_hash(clone_expr(fused))

    def test_process_independent_digest_shape(self):
        digest = structural_hash(_program())
        assert len(digest) == 64
        int(digest, 16)  # hex
