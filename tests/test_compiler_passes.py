"""Unit tests for the individual compiler passes.

The view-consumption tests mirror the paper's Figure 5 step by step; the
address-space tests exercise Algorithm 1's cases; the barrier tests check
the section 5.4 rules.
"""

import pytest

from repro.arith import Cst, Range, Var, simplify
from repro.types import ArrayType, FLOAT, TupleType, array
from repro.ir.nodes import AddressSpace, FunCall, Lambda, Literal, Param
from repro.ir.dsl import (
    add,
    compose,
    f32,
    get,
    id_fun,
    join,
    lam,
    map_lcl,
    map_seq,
    map_wrg,
    reduce_seq,
    split,
    to_global,
    to_local,
    to_private,
    zip_,
)
from repro.ir.typecheck import infer_types
from repro.ir.patterns import reverse_indices
from repro.compiler.address_space import infer_address_spaces
from repro.compiler.barriers import find_removable_barriers
from repro.compiler.memory import Memory, MemoryAllocator, scalar_layout
from repro.compiler.views import (
    Access,
    ArrayAccessView,
    GatherView,
    JoinView,
    MemView,
    ScatterView,
    SlideView,
    SplitView,
    TransposeView,
    TupleAccessView,
    ViewConsumptionError,
    ZipView,
    consume,
)
from repro.types import VectorType


def mem(name="x", t=None, space=AddressSpace.GLOBAL):
    t = t if t is not None else ArrayType(FLOAT, Var("N"))
    scalar, count = scalar_layout(t)
    return Memory(name, space, scalar, count, t)


class TestFigure5Walkthrough:
    """The exact walk of the paper's Figure 5: the first access of the
    dot-product example, x[2*l_id + 128*wg_id + i]."""

    def test_dot_product_access(self):
        n = Var("N")
        x_mem = mem("x")
        y_mem = mem("y")
        wg_id = Var("wg_id", Range.of(0, n // 128))
        l_id = Var("l_id", Range.of(0, 64))
        i = Var("i", Range.of(0, 2))

        base = ZipView(
            (MemView(x_mem, ArrayType(FLOAT, n)), MemView(y_mem, ArrayType(FLOAT, n)))
        )
        split128 = SplitView(base, Cst(128))
        chunk = ArrayAccessView(split128, wg_id)
        split2 = SplitView(chunk, Cst(2))
        pair_row = ArrayAccessView(split2, l_id)
        elem = ArrayAccessView(pair_row, i)
        first = TupleAccessView(elem, 0)

        access = consume(first)
        assert access.memory is x_mem
        expected = simplify(Cst(2) * l_id + Cst(128) * wg_id + i)
        assert simplify(access.index) == expected

    def test_second_zip_component_reaches_y(self):
        n = Var("N")
        x_mem, y_mem = mem("x"), mem("y")
        base = ZipView(
            (MemView(x_mem, ArrayType(FLOAT, n)), MemView(y_mem, ArrayType(FLOAT, n)))
        )
        i = Var("i", Range.of(0, n))
        access = consume(TupleAccessView(ArrayAccessView(base, i), 1))
        assert access.memory is y_mem


class TestViewAlgebra:
    def test_split_then_join_is_identity(self):
        n = Var("N")
        m = mem()
        i = Var("i", Range.of(0, n))
        v = JoinView(SplitView(MemView(m, ArrayType(FLOAT, n)), Cst(8)), Cst(8))
        access = consume(ArrayAccessView(v, i))
        assert simplify(access.index) == i

    def test_transpose_swaps_indices(self):
        m = mem("a", array(FLOAT, 4, 8))
        r = Var("r", Range.of(0, 8))
        c_ = Var("c", Range.of(0, 4))
        v = TransposeView(MemView(m, array(FLOAT, 4, 8)))
        access = consume(ArrayAccessView(ArrayAccessView(v, r), c_))
        # transposed[r][c] = a[c][r] -> flat c*8 + r
        assert simplify(access.index) == simplify(c_ * 8 + r)

    def test_gather_applies_index_function(self):
        m = mem("x", ArrayType(FLOAT, 16))
        i = Var("i", Range.of(0, 16))
        v = GatherView(MemView(m, ArrayType(FLOAT, 16)), reverse_indices(), Cst(16))
        access = consume(ArrayAccessView(v, i))
        assert simplify(access.index) == simplify(Cst(15) - i)

    def test_slide_window_indexing(self):
        m = mem("x", ArrayType(FLOAT, 16))
        w = Var("w", Range.of(0, 14))
        e = Var("e", Range.of(0, 3))
        v = SlideView(MemView(m, ArrayType(FLOAT, 16)), Cst(3), Cst(1))
        access = consume(ArrayAccessView(ArrayAccessView(v, w), e))
        assert simplify(access.index) == simplify(w + e)

    def test_vector_element_width_scales_index(self):
        f4 = VectorType(FLOAT, 4)
        m = mem("p", ArrayType(f4, 8))
        i = Var("i", Range.of(0, 8))
        access = consume(ArrayAccessView(MemView(m, ArrayType(f4, 8)), i))
        assert simplify(access.index) == simplify(i * 4)

    def test_missing_tuple_selection_raises(self):
        m = mem()
        v = ZipView((MemView(m, ArrayType(FLOAT, 4)),) * 2)
        with pytest.raises(ViewConsumptionError):
            consume(ArrayAccessView(v, Cst(0)))

    def test_too_few_indices_raises(self):
        m = mem("a", array(FLOAT, 4, 8))
        with pytest.raises(ViewConsumptionError):
            consume(ArrayAccessView(MemView(m, array(FLOAT, 4, 8)), Cst(0)))

    def test_private_memory_drops_parallel_indices(self):
        m = mem("acc", FLOAT, AddressSpace.PRIVATE)
        l_id = Var("l_id", Range.of(0, 64))
        access = consume(ArrayAccessView(MemView(m, FLOAT), l_id))
        assert simplify(access.index) == Cst(0)


class TestAddressSpaceInference:
    """Algorithm 1's cases."""

    def _infer(self, fun):
        infer_types(fun.body)
        infer_address_spaces(fun)
        return fun

    def test_array_params_are_global(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        fun = self._infer(Lambda([x], map_seq(id_fun())(x)))
        assert x.addr_space == AddressSpace.GLOBAL

    def test_scalar_params_are_private(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        s = Param(FLOAT, "s")
        fun = self._infer(Lambda([x, s], map_seq(id_fun())(x)))
        assert s.addr_space == AddressSpace.PRIVATE

    def test_to_local_sets_local(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        body = to_local(map_lcl(id_fun()))(x)
        self._infer(Lambda([x], body))
        assert body.addr_space == AddressSpace.LOCAL

    def test_to_private_sets_private(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        body = to_private(map_seq(id_fun()))(x)
        self._infer(Lambda([x], body))
        assert body.addr_space == AddressSpace.PRIVATE

    def test_reduce_takes_initializer_space(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        body = reduce_seq(add(), f32(0.0))(x)
        self._infer(Lambda([x], body))
        # literal initializer -> private accumulator (Algorithm 1 line 22)
        assert body.addr_space == AddressSpace.PRIVATE

    def test_literals_are_private(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        init = f32(0.0)
        body = FunCall(reduce_seq(add(), init).body.f, [init, x]) if False else None
        fun = Lambda([x], reduce_seq(add(), init)(x))
        self._infer(fun)
        assert init.addr_space == AddressSpace.PRIVATE

    def test_layout_patterns_keep_arg_space(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        body = join()(split(4)(x))
        fun = Lambda([x], map_seq(id_fun())(body))
        self._infer(fun)
        assert body.addr_space == AddressSpace.GLOBAL


class TestBarrierElimination:
    def _analyze(self, body):
        infer_types(body)
        return find_removable_barriers(body)

    def test_consecutive_elementwise_maplcl_removable(self):
        x = Param(ArrayType(FLOAT, 64), "x")
        first = to_local(map_lcl(id_fun()))(x)
        second = to_global(map_lcl(id_fun()))(first)
        removable = self._analyze(second)
        assert id(first) in removable

    def test_layout_pattern_between_forces_barrier(self):
        x = Param(ArrayType(FLOAT, 64), "x")
        first = to_local(map_lcl(id_fun()))(x)
        reordered = join()(split(8)(first))
        second = to_global(map_lcl(id_fun()))(reordered)
        removable = self._analyze(second)
        assert id(first) not in removable

    def test_zip_branches_keep_only_one_barrier(self):
        x = Param(ArrayType(FLOAT, 64), "x")
        y = Param(ArrayType(FLOAT, 64), "y")
        a = to_local(map_lcl(id_fun()))(x)
        b = to_local(map_lcl(id_fun()))(y)
        zipped = zip_(a, b)
        removable = self._analyze(zipped)
        assert (id(a) in removable) != (id(b) in removable)

    def test_dot_product_keeps_its_barriers(self):
        from tests.programs import partial_dot

        prog = partial_dot()
        infer_types(prog.body)
        removable = find_removable_barriers(prog.body)
        # Figure 7 keeps every barrier of the dot product.
        assert not removable


class TestMemoryAllocator:
    def test_unique_names(self):
        alloc = MemoryAllocator()
        a = alloc.alloc(ArrayType(FLOAT, 8), AddressSpace.LOCAL)
        b = alloc.alloc(ArrayType(FLOAT, 8), AddressSpace.LOCAL)
        assert a.name != b.name

    def test_scalar_layout_of_nested_array(self):
        scalar, count = scalar_layout(array(FLOAT, 4, 8))
        assert scalar == FLOAT
        assert simplify(count) == Cst(32)

    def test_vector_layout(self):
        scalar, count = scalar_layout(ArrayType(VectorType(FLOAT, 4), 8))
        assert scalar == FLOAT
        assert simplify(count) == Cst(32)

    def test_tuple_register(self):
        alloc = MemoryAllocator()
        t = TupleType([FLOAT, FLOAT])
        m = alloc.alloc(t, AddressSpace.PRIVATE)
        assert m.logical_type == t

    def test_tuple_array_rejected_outside_private(self):
        alloc = MemoryAllocator()
        with pytest.raises(NotImplementedError):
            alloc.alloc(TupleType([FLOAT, FLOAT]), AddressSpace.LOCAL)

    def test_param_memory(self):
        m = MemoryAllocator.for_param("x", ArrayType(FLOAT, 16), AddressSpace.GLOBAL)
        assert m.is_param
        assert m.concrete_count() == 16
