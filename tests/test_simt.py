"""Tests for the lane-batched SIMT engine (repro.opencl.simt).

The engine's contract is exact equivalence with the scalar NDRange
interpreter: bitwise-identical buffers and identical counters.  The
tests here check that contract on divergent control flow (masked
``if``/``for``/``while``), short-circuit evaluation, helpers with early
returns, struct accumulators, and the fallback paths (static analysis
refusals and dynamic cross-lane race detection).
"""

import numpy as np
import pytest

from repro.opencl import (
    Buffer,
    OpenCLProgram,
    VectorizationError,
    analyze_kernel,
    launch,
)
from repro.opencl.interp import BarrierDivergence
from repro.opencl.runtime import _parse_cached


#: The execution backends whose results must agree bitwise: the scalar
#: reference interpreter, the interpretive lane-batched walk, the
#: closure-compiled pipeline, and the whole-grid fused-numpy backend
#: (whose chain falls back through compiled/scalar on refusals — the
#: agreement must hold either way).
ENGINES = ("scalar", "interp", "compiled", "fused")


def run_both(source, global_size, local_size, make_args, kernel_name=None,
             engines=ENGINES):
    """Run a kernel on every engine; returns one (buffers, counters)
    pair per engine.

    ``make_args`` builds a fresh argument dict (with fresh output
    buffers) per engine so the engines cannot observe each other.
    """
    results = []
    for engine in engines:
        program = OpenCLProgram(source)
        args = make_args()
        counters = launch(
            program, global_size, local_size, args,
            kernel_name=kernel_name, engine=engine,
        )
        outs = {
            name: v.data.copy()
            for name, v in args.items()
            if isinstance(v, Buffer)
        }
        results.append((outs, counters))
    return results


def assert_engines_agree(source, global_size, local_size, make_args):
    results = run_both(source, global_size, local_size, make_args)
    (outs_s, c_s) = results[0]
    for engine, (outs, counters) in zip(ENGINES[1:], results[1:]):
        for name in outs_s:
            np.testing.assert_array_equal(
                outs_s[name], outs[name],
                err_msg=f"buffer {name!r} differs on engine {engine!r}",
            )
        assert vars(c_s) == vars(counters), (
            f"counters differ on {engine!r}:\n"
            f"scalar: {vars(c_s)}\n{engine}: {vars(counters)}"
        )


class TestDivergentControlFlow:
    """Masked if/for/while kernels, checked lane-for-lane vs. scalar."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_masked_if_else(self, seed):
        src = """
        kernel void K(const global float * restrict x, global float *out, int n) {
          int i = get_global_id(0);
          if (i < n) {
            if (x[i] > 0.5f) { out[i] = x[i] * 2.0f; }
            else { out[i] = x[i] - 1.0f; }
          }
        }
        """
        rng = np.random.default_rng(seed)
        x = rng.random(64)
        assert_engines_agree(
            src, 64, 16,
            lambda: {"x": Buffer.from_array(x.copy()),
                     "out": Buffer.zeros(64), "n": 48},
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_data_dependent_while(self, seed):
        # Collatz-style loop: every lane runs a different trip count.
        src = """
        kernel void K(const global int * restrict x, global int *out,
                      global int *steps) {
          int i = get_global_id(0);
          int v = x[i];
          int count = 0;
          while (v != 1) {
            if (v % 2 == 0) { v = v / 2; }
            else { v = 3 * v + 1; }
            count += 1;
          }
          out[i] = v;
          steps[i] = count;
        }
        """
        rng = np.random.default_rng(seed)
        x = rng.integers(1, 50, size=32)
        assert_engines_agree(
            src, 32, 8,
            lambda: {"x": Buffer.from_array(x.copy()),
                     "out": Buffer.zeros(32, "int"),
                     "steps": Buffer.zeros(32, "int")},
        )

    def test_divergent_for_bounds(self):
        # Per-lane loop bound: lane i iterates i times.
        src = """
        kernel void K(global float *out, int n) {
          int i = get_global_id(0);
          float acc = 0.0f;
          for (int k = 0; k < i; k += 1) { acc = acc + (float) k; }
          out[i] = acc;
        }
        """
        assert_engines_agree(
            src, 32, 8, lambda: {"out": Buffer.zeros(32), "n": 32}
        )

    def test_short_circuit_masks_side_counts(self):
        # The && rhs only loads for lanes whose lhs is true; the load and
        # iop counters must reflect that exactly.
        src = """
        kernel void K(const global float * restrict x, global float *out, int n) {
          int i = get_global_id(0);
          if (i < n && x[i] > 0.25f) { out[i] = 1.0f; }
          if (i >= n || x[i] < 0.75f) { out[i] = out[i] + 0.5f; }
        }
        """
        rng = np.random.default_rng(3)
        x = rng.random(64)
        assert_engines_agree(
            src, 64, 16,
            lambda: {"x": Buffer.from_array(x.copy()),
                     "out": Buffer.zeros(64), "n": 40},
        )

    def test_ternary_per_lane(self):
        src = """
        kernel void K(const global float * restrict x, global float *out) {
          int i = get_global_id(0);
          out[i] = (x[i] > 0.5f) ? x[i] * 10.0f : x[i] * 0.5f;
        }
        """
        rng = np.random.default_rng(5)
        x = rng.random(32)
        assert_engines_agree(
            src, 32, 8,
            lambda: {"x": Buffer.from_array(x.copy()), "out": Buffer.zeros(32)},
        )

    def test_helper_with_masked_early_return(self):
        # md-style helper: early return under a divergent condition.
        src = """
        float guard(float v) {
          if (v < 0.5f) { return 0.0f; }
          return v * v;
        }
        kernel void K(const global float * restrict x, global float *out) {
          int i = get_global_id(0);
          out[i] = guard(x[i]);
        }
        """
        rng = np.random.default_rng(7)
        x = rng.random(32)
        assert_engines_agree(
            src, 32, 8,
            lambda: {"x": Buffer.from_array(x.copy()), "out": Buffer.zeros(32)},
        )

    def test_struct_accumulator_masked_members(self):
        # kmeans-style argmin with struct members merged under masks.
        src = """
        typedef struct { float _0; float _1; } T2;
        kernel void K(const global float * restrict x, global float *out, int k) {
          int i = get_global_id(0);
          T2 best;
          best._0 = 1.0e30f;
          best._1 = 0.0f;
          for (int j = 0; j < k; j += 1) {
            float d = x[i * k + j];
            if (d < best._0) { best._0 = d; best._1 = (float) j; }
          }
          out[i] = best._1;
        }
        """
        rng = np.random.default_rng(11)
        k = 5
        x = rng.random(16 * k)
        assert_engines_agree(
            src, 16, 4,
            lambda: {"x": Buffer.from_array(x.copy()),
                     "out": Buffer.zeros(16), "k": k},
        )

    def test_kernel_early_return(self):
        src = """
        kernel void K(global float *out, int n) {
          int i = get_global_id(0);
          if (i >= n) { return; }
          out[i] = (float) i;
        }
        """
        assert_engines_agree(
            src, 32, 8, lambda: {"out": Buffer.zeros(32), "n": 20}
        )

    def test_cached_loads_match(self):
        # Re-loading the same address must hit the per-item load cache
        # identically on both engines (including the shared address that
        # every lane loads).
        src = """
        kernel void K(const global float * restrict x, global float *out, int n) {
          int i = get_global_id(0);
          float pivot = x[0];
          float acc = 0.0f;
          for (int k = 0; k < n; k += 1) { acc = acc + x[i] * pivot; }
          out[i] = acc;
        }
        """
        results = run_both(
            src, 16, 4,
            lambda: {"x": Buffer.from_array(np.arange(16, dtype=float) + 1),
                     "out": Buffer.zeros(16), "n": 3},
        )
        outs_s, c_s = results[0]
        assert c_s.cached_loads > 0
        for outs_v, c_v in results[1:]:
            assert vars(c_s) == vars(c_v)
            np.testing.assert_array_equal(outs_s["out"], outs_v["out"])


class TestBarriers:
    def test_group_uniform_barrier_loop(self):
        # Strided work-group loop with a barrier inside: the trip count
        # differs per group (group-uniform, not globally uniform).
        src = """
        kernel void K(const global float * restrict x, global float *out, int n) {
          local float tmp[4];
          int l = get_local_id(0);
          for (int wg = get_group_id(0); wg < n / 4; wg += get_num_groups(0)) {
            tmp[l] = x[wg * 4 + l];
            barrier(CLK_LOCAL_MEM_FENCE);
            out[wg * 4 + l] = tmp[3 - l] * 2.0f;
            barrier(CLK_LOCAL_MEM_FENCE);
          }
        }
        """
        x = np.arange(32, dtype=float)
        assert_engines_agree(
            src, 8, 4,
            lambda: {"x": Buffer.from_array(x.copy()),
                     "out": Buffer.zeros(32), "n": 32},
        )

    def test_reduction_tree(self):
        src = """
        kernel void K(const global float * restrict x, global float *out) {
          local float tmp[8];
          int l = get_local_id(0);
          tmp[l] = x[get_global_id(0)];
          barrier(CLK_LOCAL_MEM_FENCE);
          for (int s = 4; s > 0; s = s / 2) {
            if (l < s) { tmp[l] = tmp[l] + tmp[l + s]; }
            barrier(CLK_LOCAL_MEM_FENCE);
          }
          if (l < 1) { out[get_group_id(0)] = tmp[0]; }
        }
        """
        rng = np.random.default_rng(13)
        x = rng.random(32)
        assert_engines_agree(
            src, 32, 8,
            lambda: {"x": Buffer.from_array(x.copy()), "out": Buffer.zeros(4)},
        )

    def test_barrier_divergence_still_raises_via_fallback(self):
        # A barrier under a lane-divergent condition is statically
        # rejected by the vector engine; the scalar fallback must keep
        # raising BarrierDivergence.
        src = """
        kernel void K(global float *x) {
          if (get_local_id(0) < 1) { barrier(CLK_LOCAL_MEM_FENCE); }
          x[get_global_id(0)] = 1.0f;
        }
        """
        program = OpenCLProgram(src)
        reason = analyze_kernel(program.parsed, program.kernel())
        assert reason is not None and "lane-divergent" in reason
        with pytest.raises(BarrierDivergence):
            launch(program, 2, 2, {"x": Buffer.zeros(2)})
        with pytest.raises(VectorizationError):
            launch(program, 2, 2, {"x": Buffer.zeros(2)}, engine="vector")


class TestVectorGeometryBuiltins:
    """``dot``/``length`` use an explicitly-ordered reduction shared by
    both engines, so vector-geometry kernels no longer force the scalar
    fallback."""

    _SRC = """
    kernel void K(const global float * restrict p,
                  const global float * restrict q,
                  global float *dots, global float *lens) {
      int i = get_global_id(0);
      float4 a = vload4(i, p);
      float4 b = vload4(i, q);
      dots[i] = dot(a, b);
      lens[i] = length(a);
    }
    """

    def test_analysis_accepts_dot_and_length(self):
        program = OpenCLProgram(self._SRC)
        assert analyze_kernel(program.parsed, program.kernel()) is None

    def test_engines_agree_bitwise(self):
        n = 64
        rng = np.random.default_rng(11)
        p = rng.standard_normal(4 * n)
        q = rng.standard_normal(4 * n)

        def args():
            return {
                "p": Buffer.from_array(p),
                "q": Buffer.from_array(q),
                "dots": Buffer.zeros(n),
                "lens": Buffer.zeros(n),
            }

        assert_engines_agree(self._SRC, n, 16, args)

    def test_ordered_reduction_matches_sequential_sum(self):
        # The contract is a fixed left-to-right multiply-add chain, not
        # whatever BLAS does for the current shape.
        n = 8
        rng = np.random.default_rng(5)
        p = rng.standard_normal(4 * n)
        q = rng.standard_normal(4 * n)

        def args():
            return {
                "p": Buffer.from_array(p),
                "q": Buffer.from_array(q),
                "dots": Buffer.zeros(n),
                "lens": Buffer.zeros(n),
            }

        program = OpenCLProgram(self._SRC)
        a = args()
        launch(program, n, 8, a, engine="vector")
        pv, qv = p.reshape(n, 4), q.reshape(n, 4)
        for i in range(n):
            acc = pv[i, 0] * qv[i, 0]
            for k in range(1, 4):
                acc = acc + pv[i, k] * qv[i, k]
            assert a["dots"].data[i] == acc


class TestFallback:
    def test_analysis_accepts_plain_kernel(self):
        program = OpenCLProgram(
            "kernel void K(global float *x) { x[get_global_id(0)] = 1.0f; }"
        )
        assert analyze_kernel(program.parsed, program.kernel()) is None

    def test_analysis_rejects_barrier_plus_return(self):
        src = """
        kernel void K(global float *x, int n) {
          if (get_global_id(0) >= n) { return; }
          barrier(CLK_LOCAL_MEM_FENCE);
          x[get_global_id(0)] = 1.0f;
        }
        """
        program = OpenCLProgram(src)
        reason = analyze_kernel(program.parsed, program.kernel())
        assert reason is not None and "return" in reason

    def test_analysis_rejects_unknown_function(self):
        src = "kernel void K(global float *x) { x[0] = mystery(x[0]); }"
        program = OpenCLProgram(src)
        assert analyze_kernel(program.parsed, program.kernel()) is not None

    def test_dynamic_race_falls_back_to_scalar(self):
        # Every work-item stages its value through the *same* scratch
        # cell — the scalar interpreter's sequential item order makes
        # this "work"; the vector engine must detect the cross-lane race
        # at run time, roll back, and reproduce the scalar result.
        src = """
        kernel void K(const global float * restrict x, global float *scratch,
                      global float *out) {
          int i = get_global_id(0);
          scratch[0] = x[i];
          out[i] = scratch[0] * 2.0f;
        }
        """
        x = np.arange(8, dtype=float)
        program = OpenCLProgram(src)
        assert analyze_kernel(program.parsed, program.kernel()) is None

        def args():
            return {"x": Buffer.from_array(x.copy()),
                    "scratch": Buffer.zeros(1), "out": Buffer.zeros(8)}

        a_s = args()
        c_s = launch(program, 8, 4, a_s, engine="scalar")
        a_auto = args()
        c_auto = launch(program, 8, 4, a_auto)  # auto: tries vector, falls back
        np.testing.assert_array_equal(a_s["out"].data, a_auto["out"].data)
        np.testing.assert_array_equal(a_s["scratch"].data, a_auto["scratch"].data)
        assert vars(c_s) == vars(c_auto)
        with pytest.raises(VectorizationError):
            launch(program, 8, 4, args(), engine="vector")

    def test_cross_group_race_across_barrier_falls_back(self):
        # Barriers order work-items *within* a group, never groups; the
        # scalar engine runs groups sequentially (group 0 first), so a
        # cross-group conflict is order-dependent even when a barrier
        # separates the write from the read.  The vector engine must
        # detect it at any segment distance and fall back.
        src = """
        kernel void K(global float *flag, global float *out) {
          int i = get_global_id(0);
          if (get_group_id(0) == 1) { flag[0] = 1.0f; }
          barrier(CLK_LOCAL_MEM_FENCE);
          if (get_group_id(0) == 0) { out[i] = flag[0]; }
        }
        """
        program = OpenCLProgram(src)
        assert analyze_kernel(program.parsed, program.kernel()) is None

        def args():
            return {"flag": Buffer.zeros(1), "out": Buffer.zeros(8)}

        a_s = args()
        c_s = launch(program, 8, 4, a_s, engine="scalar")
        a_auto = args()
        c_auto = launch(program, 8, 4, a_auto)
        # Group 0 runs first in the scalar engine, so it reads 0.0.
        np.testing.assert_array_equal(a_s["out"].data, np.zeros(8))
        np.testing.assert_array_equal(a_s["out"].data, a_auto["out"].data)
        assert vars(c_s) == vars(c_auto)
        with pytest.raises(VectorizationError):
            launch(program, 8, 4, args(), engine="vector")

    def test_rollback_restores_buffers(self):
        # The race is only hit after some lanes already stored; auto mode
        # must restore the pre-launch buffer contents before re-running.
        src = """
        kernel void K(global float *out, global float *scratch) {
          int i = get_global_id(0);
          out[i] = 7.0f;
          scratch[0] = (float) i;
          out[i] = out[i] + scratch[0];
        }
        """
        program = OpenCLProgram(src)
        out = Buffer.from_array(np.full(8, -1.0))
        scratch = Buffer.zeros(1)
        launch(program, 8, 8, {"out": out, "scratch": scratch})
        expected = Buffer.from_array(np.full(8, -1.0))
        scratch2 = Buffer.zeros(1)
        launch(program, 8, 8, {"out": expected, "scratch": scratch2},
               engine="scalar")
        np.testing.assert_array_equal(out.data, expected.data)

    def test_unknown_engine_rejected(self):
        program = OpenCLProgram(
            "kernel void K(global float *x) { x[0] = 1.0f; }"
        )
        with pytest.raises(ValueError):
            launch(program, 1, 1, {"x": Buffer.zeros(1)}, engine="warp")


class TestParseCache:
    def test_identical_source_shares_parse(self):
        src = "kernel void K(global float *x) { x[0] = 1.0f; }"
        a = OpenCLProgram(src)
        b = OpenCLProgram(src)
        assert a.parsed is b.parsed

    def test_distinct_sources_do_not_collide(self):
        a = OpenCLProgram("kernel void K(global float *x) { x[0] = 1.0f; }")
        b = OpenCLProgram("kernel void K(global float *x) { x[0] = 2.0f; }")
        assert a.parsed is not b.parsed

    def test_cache_is_bounded(self):
        maxsize = _parse_cached.cache_info().maxsize
        for i in range(maxsize + 16):
            OpenCLProgram(
                f"kernel void K(global float *x) {{ x[0] = {i}.0f; }}"
            )
        assert _parse_cached.cache_info().currsize <= maxsize


class TestSimplifyMemoization:
    def test_simplify_cache_hits(self):
        import sys

        S = sys.modules["repro.arith.simplify"]
        from repro.arith.expr import Cst, IntDiv, Prod, Sum, Var
        from repro.arith.ranges import Range

        S.clear_caches()
        n = Var("N", Range.natural())
        i = Var("i", Range.of(0, n))
        expr = Sum([Prod([i, Cst(4)]), IntDiv(i, n)])
        first = S.simplify(expr)
        assert len(S._SIMPLIFY_CACHE) > 0
        again = S.simplify(Sum([Prod([i, Cst(4)]), IntDiv(i, n)]))
        assert first == again

    def test_range_is_part_of_the_key(self):
        import sys

        S = sys.modules["repro.arith.simplify"]
        from repro.arith.expr import Mod, Var
        from repro.arith.ranges import Range

        S.clear_caches()
        # i in [0, 8) mod 8 simplifies to i; i in [0, 64) mod 8 must not.
        small = Var("i", Range.of(0, 8))
        large = Var("i", Range.of(0, 64))
        assert S.simplify(Mod(small, S.Cst(8))) == small
        result = S.simplify(Mod(large, S.Cst(8)))
        assert isinstance(result, Mod)

    def test_prove_lt_cached(self):
        import sys

        S = sys.modules["repro.arith.simplify"]
        from repro.arith.expr import Var
        from repro.arith.ranges import Range

        S.clear_caches()
        n = Var("N", Range.natural())
        i = Var("i", Range.of(0, n))
        assert S.prove_lt(i, n)
        assert len(S._PROVE_LT_CACHE) == 1
        assert S.prove_lt(Var("i", Range.of(0, n)), Var("N", Range.natural()))


class TestVectorBenchsuiteParity:
    """Spot-check full-benchmark parity (the exhaustive sweep runs in
    the benchsuite tests; these two cover the local-memory and
    helper-function heavy paths)."""

    @pytest.mark.parametrize("name", ["gemv", "kmeans"])
    def test_reference_and_generated_parity(self, name):
        from repro.benchsuite.common import get_benchmark

        bench = get_benchmark(name)
        inputs, size_env = bench.inputs_for("small")
        for runner in (bench.run_reference, bench.run_generated):
            out_s, c_s = runner(inputs, size_env, engine="scalar")
            out_a, c_a = runner(inputs, size_env)
            np.testing.assert_array_equal(out_s, out_a)
            assert vars(c_s) == vars(c_a)
