"""Tests for the observability subsystem (repro.obs).

Covers the tracer (span nesting, threading, Chrome trace_event schema,
drop accounting), the metrics registry (primitives, providers, the
merged snapshot of all five adapted stats objects), the kernel
profiler (segment timings, buffer attribution), the out-of-band
contract (buffers and Counters bitwise-identical with tracing and
profiling on vs off, across engines), the disabled fast path, and the
benchsuite's --trace/--metrics-json end to end.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.obs import metrics as metrics_mod
from repro.obs import profile as profile_mod
from repro.obs import trace as trace_mod
from repro.opencl import Buffer, OpenCLProgram, launch

SAXPY = """
kernel void SAXPY(const global float * restrict x,
                  const global float * restrict y,
                  global float *out, float a, int n) {
  int i = get_global_id(0);
  if (i < n) { out[i] = a * x[i] + y[i]; }
}
"""


def run_saxpy(engine, n=64, local=16):
    program = OpenCLProgram(SAXPY)
    args = {
        "x": Buffer.from_array(np.arange(n, dtype=float)),
        "y": Buffer.from_array(np.ones(n)),
        "out": Buffer.zeros(n),
        "a": 2.0,
        "n": n,
    }
    counters = launch(program, n, local, args, engine=engine)
    return args["out"].data.copy(), vars(counters)


@pytest.fixture
def no_tracing():
    """Guarantee tracing is off before and after a test."""
    obs.stop_tracing()
    yield
    obs.stop_tracing()


@pytest.fixture
def no_profiling():
    profile_mod.disable()
    yield
    profile_mod.disable()


def read_trace(path):
    doc = json.loads(path.read_text())
    assert set(doc) >= {"traceEvents", "displayTimeUnit"}
    assert doc["displayTimeUnit"] == "ms"
    assert isinstance(doc["traceEvents"], list)
    for event in doc["traceEvents"]:
        assert event["ph"] in ("X", "i", "M")
        assert isinstance(event["name"], str)
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert event["dur"] >= 0
        if event["ph"] == "i":
            assert event["s"] == "t"
    return doc


class TestTracer:
    def test_disabled_span_is_shared_noop_singleton(self, no_tracing):
        assert not obs.tracing_enabled()
        s1 = obs.span("a", k=1)
        s2 = obs.span("b")
        assert s1 is s2  # no allocation on the fast path
        with s1:
            pass  # reentrant, no-op

    def test_instant_disabled_is_noop(self, no_tracing):
        obs.instant("nothing", happened=True)  # must not raise

    def test_span_nesting_by_containment(self, tmp_path, no_tracing):
        path = tmp_path / "trace.json"
        obs.start_tracing(path)
        with obs.span("outer", which="o"):
            with obs.span("inner", which="i"):
                time.sleep(0.001)
        obs.instant("mark", detail=1)
        assert obs.stop_tracing() == path

        doc = read_trace(path)
        by_name = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] != "M"
        }
        outer, inner = by_name["outer"], by_name["inner"]
        # Chrome infers nesting from ts/dur containment per tid.
        assert outer["tid"] == inner["tid"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6
        assert outer["args"] == {"which": "o"}
        assert by_name["mark"]["ph"] == "i"
        assert by_name["mark"]["args"] == {"detail": 1}

    def test_threads_get_distinct_tids_and_names(self, tmp_path, no_tracing):
        path = tmp_path / "trace.json"
        obs.start_tracing(path)

        def work():
            with obs.span("worker-span"):
                pass

        t = threading.Thread(target=work, name="obs-worker")
        with obs.span("main-span"):
            t.start()
            t.join()
        obs.stop_tracing()

        doc = read_trace(path)
        spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert spans["main-span"]["tid"] != spans["worker-span"]["tid"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "obs-worker" in names
        assert len(meta) == 2  # one thread_name record per tid

    def test_timed_span_measures_without_tracing(self, no_tracing):
        with obs.timed_span("t") as ts:
            time.sleep(0.002)
        assert ts.elapsed >= 0.002

    def test_timed_span_emits_event_when_tracing(self, tmp_path, no_tracing):
        path = tmp_path / "trace.json"
        obs.start_tracing(path)
        with obs.timed_span("timed", benchmark="nn") as ts:
            time.sleep(0.001)
        obs.stop_tracing()
        doc = read_trace(path)
        (event,) = [e for e in doc["traceEvents"] if e["name"] == "timed"]
        # The reported seconds equal the span duration in the trace.
        assert event["dur"] == pytest.approx(ts.elapsed * 1e6)
        assert event["args"] == {"benchmark": "nn"}

    def test_max_events_drops_and_reports(self, tmp_path, no_tracing):
        path = tmp_path / "trace.json"
        obs.start_tracing(path, max_events=5)
        for i in range(20):
            obs.instant("burst", i=i)
        obs.stop_tracing()
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 5
        assert doc["otherData"]["droppedEvents"] == 16  # 20 + meta - 5

    def test_stop_without_start_returns_none(self, no_tracing):
        assert obs.stop_tracing() is None

    def test_posthoc_attrs_recorded(self, tmp_path, no_tracing):
        path = tmp_path / "trace.json"
        obs.start_tracing(path)
        with obs.span("lookup") as s:
            s.attrs["memo"] = "hit"
        obs.stop_tracing()
        (event,) = [
            e for e in read_trace(path)["traceEvents"]
            if e["name"] == "lookup"
        ]
        assert event["args"] == {"memo": "hit"}

    def test_posthoc_attrs_disabled_is_noop(self, no_tracing):
        with obs.span("lookup") as s:
            s.attrs["memo"] = "hit"  # shared sink; must not raise

    def test_unserializable_attrs_degrade_to_repr(self, tmp_path, no_tracing):
        path = tmp_path / "trace.json"
        obs.start_tracing(path)
        with obs.span("odd", payload=object()):
            pass
        obs.stop_tracing()
        doc = read_trace(path)  # json.loads succeeding is the point
        (event,) = [e for e in doc["traceEvents"] if e["name"] == "odd"]
        assert "object" in event["args"]["payload"]


class TestMetricsRegistry:
    def test_counter_gauge_histogram_shapes(self):
        reg = metrics_mod.MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 2)
        reg.set_gauge("depth", 3.0)
        for v in (1.0, 5.0, 3.0):
            reg.observe("width", v)
        doc = reg.snapshot()
        assert doc["counters"] == {"hits": 3}
        assert doc["gauges"] == {"depth": 3.0}
        assert doc["histograms"]["width"] == {
            "count": 3, "total": 9.0, "min": 1.0, "max": 5.0, "mean": 3.0,
            # Below five observations the quantiles are exact
            # (interpolated) sample quantiles over [1, 3, 5].
            "p50": 3.0, "p95": pytest.approx(4.8), "p99": pytest.approx(4.96),
        }

    def test_provider_replace_semantics(self):
        reg = metrics_mod.MetricsRegistry()
        reg.register_provider("thing", lambda: 1)
        reg.register_provider("thing", lambda: 2)
        assert reg.snapshot()["thing"] == 2
        reg.register_provider("thing", lambda: 3, replace=False)
        assert reg.snapshot()["thing"] == 2

    def test_reserved_names_rejected(self):
        reg = metrics_mod.MetricsRegistry()
        for name in ("counters", "gauges", "histograms"):
            with pytest.raises(ValueError):
                reg.register_provider(name, dict)

    def test_failing_provider_does_not_poison_snapshot(self):
        reg = metrics_mod.MetricsRegistry()
        reg.inc("ok")

        def boom():
            raise RuntimeError("nope")

        reg.register_provider("bad", boom)
        doc = reg.snapshot()
        assert doc["counters"] == {"ok": 1}
        assert doc["bad"] == {"error": "RuntimeError: nope"}

    def test_snapshot_merges_all_five_stats_objects(self):
        """The tentpole contract: one document holds adapted views of
        interp Counters, CacheStats, ExploreStats + FailureReports,
        the DegradationLedger, and the fault-site counts."""
        from repro.backend.ledger import DegradationLedger
        from repro.cache import CacheStats
        from repro.opencl.interp import Counters
        from repro.resilience import FailureReport
        from repro.rewrite.explore import ExploreStats

        counters = Counters()
        counters.global_loads = 7
        obs.register_counters(counters)

        cache_stats = CacheStats(kernel_hits=3, kernel_misses=1)
        obs.register_cache_stats(cache_stats)

        explore_stats = ExploreStats(enumerated=11, evaluated=4)
        failure = FailureReport(
            label="cand", trace=("rule",), kind="compile", message="bad"
        )
        obs.register_explore(explore_stats, [failure])

        ledger = DegradationLedger()
        ledger.record("auto", "fused", "crash", "boom")
        obs.register_ledger(ledger)

        doc = obs.snapshot()
        assert doc["counters.kernel"]["global_loads"] == 7
        assert doc["cache"]["kernel_hits"] == 3
        assert doc["cache"]["kernel_hit_rate"] == pytest.approx(0.75)
        assert doc["explore"]["stats"]["enumerated"] == 11
        assert doc["explore"]["failures"][0]["kind"] == "compile"
        assert doc["ledger"]["total"] == 1
        assert doc["ledger"]["declines"][0]["backend"] == "fused"
        assert "sites" in doc["faults"]
        assert "segments" in doc["profile"]
        json.dumps(doc)  # the whole merged document is serializable

        # Restore the process-global slots the test replaced.
        obs.register_ledger()
        obs.install_default_providers()

    def test_default_snapshot_has_stable_schema(self):
        """Every top-level section exists before any real object has
        registered (placeholder providers)."""
        doc = obs.snapshot()
        for key in ("counters", "gauges", "histograms", "cache",
                    "explore", "ledger", "faults", "profile"):
            assert key in doc


class TestKernelProfiler:
    def test_segment_and_traffic_attribution(self, no_profiling):
        prof = profile_mod.enable()
        prof.reset()
        run_saxpy("compiled")
        doc = profile_mod.as_dict()
        assert doc["enabled"]
        assert doc["segments"], "compiled backend must record segments"
        assert all(s["kernel"] == "SAXPY" for s in doc["segments"])
        named = {t["buffer"] for t in doc["traffic"]}
        # Buffers are attributed by name from the launch environment.
        assert {"x", "y", "out"} <= named
        out_row = next(
            t for t in doc["traffic"]
            if t["buffer"] == "out" and t["space"] == "global"
        )
        assert out_row["stores"] == 64

    def test_fused_backend_records_fused_segments(self, no_profiling):
        prof = profile_mod.enable()
        prof.reset()
        run_saxpy("fused")
        doc = profile_mod.as_dict()
        kinds = {s["kind"] for s in doc["segments"]}
        assert "fused" in kinds or "generic" in kinds

    def test_format_table_lists_top_segments(self, no_profiling):
        prof = profile_mod.enable()
        prof.reset()
        run_saxpy("compiled")
        table = profile_mod.format_table()
        assert "kernel profile" in table
        assert "SAXPY" in table

    def test_disabled_profile_view(self, no_profiling):
        assert profile_mod.as_dict() == {
            "enabled": False, "segments": [], "traffic": []
        }
        assert "disabled" in profile_mod.format_table()


class TestOutOfBand:
    """The hard acceptance constraint: enabling observability never
    changes results — buffers and Counters are bitwise-identical."""

    @pytest.mark.parametrize("engine", ["scalar", "compiled", "fused"])
    def test_bitwise_identical_with_tracing_and_profiling(
        self, engine, tmp_path, no_tracing, no_profiling
    ):
        out_off, counters_off = run_saxpy(engine)

        obs.start_tracing(tmp_path / f"{engine}.json")
        profile_mod.enable()
        try:
            out_on, counters_on = run_saxpy(engine)
        finally:
            profile_mod.disable()
            obs.stop_tracing()

        assert out_on.tobytes() == out_off.tobytes()
        assert counters_on == counters_off

    def test_trace_covers_the_hot_path(self, tmp_path, no_tracing):
        path = tmp_path / "trace.json"
        obs.start_tracing(path)
        run_saxpy("compiled", n=48)
        obs.stop_tracing()
        names = {
            e["name"]
            for e in read_trace(path)["traceEvents"]
            if e["ph"] == "X"
        }
        # parse may be served from the lru cache (another test already
        # parsed SAXPY); launch/plan/run always fire.
        assert {"launch", "plan", "run"} <= names

    def test_launch_metrics_count_per_tier(self, no_tracing):
        before = metrics_mod.REGISTRY.counter("launch.total")
        served = metrics_mod.REGISTRY.counter("launch.served.scalar")
        run_saxpy("scalar")
        assert metrics_mod.REGISTRY.counter("launch.total") == before + 1
        assert (
            metrics_mod.REGISTRY.counter("launch.served.scalar") == served + 1
        )


class TestDisabledOverhead:
    def test_disabled_span_is_cheap(self, no_tracing):
        """Smoke bound only (CI gates the real number in
        benchmarks/check_perf_regression.py): 100k disabled span()
        round-trips must be far from pathological."""
        t0 = time.perf_counter()
        for _ in range(100_000):
            with obs.span("hot", i=0):
                pass
        elapsed = time.perf_counter() - t0
        assert elapsed < 2.0

    def test_disabled_by_default(self, no_tracing, no_profiling):
        assert not obs.tracing_enabled()
        assert not profile_mod.enabled()


class TestBenchsuiteEndToEnd:
    def test_figure8_trace_and_metrics_flags(self, tmp_path, capsys,
                                             no_tracing, no_profiling):
        from repro.benchsuite.__main__ import main

        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        rc = main([
            "figure8", "--benchmarks", "nn", "--sizes", "small",
            "--no-cache", "--profile",
            "--trace", str(trace_path),
            "--metrics-json", str(metrics_path),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "Figure 8" in captured.out
        assert "kernel profile" in captured.err

        doc = read_trace(trace_path)
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {
            "figure8.benchmark", "figure8.reference", "figure8.generated",
            "launch", "plan", "run", "compile",
        } <= names

        metrics_doc = json.loads(metrics_path.read_text())
        assert metrics_doc["counters"]["launch.total"] >= 4
        assert any(
            k.startswith("launch.served.") for k in metrics_doc["counters"]
        )
        for key in ("cache", "explore", "ledger", "faults",
                    "profile", "counters.kernel"):
            assert key in metrics_doc
        assert metrics_doc["profile"]["enabled"]
