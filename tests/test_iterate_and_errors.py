"""Iterate edge cases, error paths, and remaining arithmetic nodes."""

import numpy as np
import pytest

from repro.arith import Cst, Log2, Pow, Var, simplify
from repro.arith.expr import LoadIndex, Sum, free_vars, substitute, walk
from repro.arith.simplify import log2, pow_
from repro.types import ArrayType, FLOAT, array
from repro.ir.nodes import FunCall, Lambda, Param
from repro.ir.dsl import (
    add,
    compose,
    f32,
    id_fun,
    iterate,
    join,
    map_glb,
    map_lcl,
    map_seq,
    map_wrg,
    reduce_seq,
    split,
    to_global,
    to_local,
)
from repro.ir.typecheck import infer_types
from repro.ir.patterns import Iterate, LiftTypeError
from repro.compiler import CompilerOptions, compile_kernel
from repro.compiler.codegen import CodeGenError
from repro.compiler.kernel import compile_and_run


class TestIterate:
    def test_compiled_tree_reduction(self):
        """iterate-halving inside a work group (the Listing 1 core)."""
        n = 128
        x = Param(ArrayType(FLOAT, n), "x")
        halve = compose(
            join(),
            map_lcl(compose(to_local(map_seq(id_fun())),
                            reduce_seq(add(), f32(0.0)))),
            split(2),
        )
        work_group = compose(
            join(),
            to_global(map_lcl(map_seq(id_fun()))),
            split(1),
            iterate(5, halve),
            join(),
            map_lcl(compose(to_local(map_seq(id_fun())),
                            reduce_seq(add(), f32(0.0)))),
            split(2),
        )
        prog = Lambda([x], compose(join(), map_wrg(work_group), split(64))(x))
        data = np.arange(n, dtype=float)
        result = compile_and_run(
            prog, {"x": data}, {}, global_size=64,
            options=CompilerOptions(local_size=(32, 1, 1)),
        )
        np.testing.assert_allclose(result.output, data.reshape(2, 64).sum(axis=1))

    def test_iterate_zero_times_is_identity_type(self):
        x = Param(ArrayType(FLOAT, 16), "x")
        e = Iterate(0, map_seq(id_fun()))(x)
        assert infer_types(e) == ArrayType(FLOAT, Cst(16))

    def test_iterate_growing_length(self):
        """g(n) = n * 2 has the closed form n * 2^m."""
        from repro.ir.dsl import lam

        x = Param(ArrayType(FLOAT, 4), "x")
        # duplicate the array: join o map(λe. two copies)… use split/join
        # algebra instead: [T]n -> [[T]1]n -> … simplest growth: join of
        # zip-free duplication is not expressible; check the closed-form
        # helper directly.
        n_var = Var("n")
        it = Iterate(3, map_seq(id_fun()))
        out = it.closed_form_length(n_var * 2, n_var, Cst(4))
        assert simplify(out) == Cst(32)

    def test_iterate_non_closed_form_needs_concrete_m(self):
        n_var = Var("n")
        it = Iterate(Var("m"), map_seq(id_fun()))
        with pytest.raises(LiftTypeError):
            it.closed_form_length(n_var + 1, n_var, Cst(4))

    def test_iterate_concrete_unrolls_odd_shapes(self):
        n_var = Var("n")
        it = Iterate(3, map_seq(id_fun()))
        out = it.closed_form_length(n_var - 1, n_var, Cst(10))
        assert simplify(out) == Cst(7)


class TestCodegenErrors:
    def test_untyped_kernel_param(self):
        x = Param(None, "x")
        with pytest.raises((CodeGenError, LiftTypeError, TypeError)):
            compile_kernel(Lambda([x], map_glb(id_fun())(x)))

    def test_scalar_result_rejected(self):
        x = Param(FLOAT, "x")
        uf = id_fun()
        with pytest.raises((CodeGenError, LiftTypeError)):
            compile_kernel(Lambda([x], FunCall(uf, [x])))

    def test_local_buffer_with_symbolic_size_rejected(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        body = compose(
            join(),
            map_wrg(compose(to_global(map_lcl(id_fun())),
                            to_local(map_lcl(id_fun())))),
            split(n),  # symbolic chunk -> symbolic local buffer
        )(x)
        with pytest.raises((CodeGenError, ValueError)):
            compile_kernel(Lambda([x], body))

    def test_pad_unsupported_in_codegen(self):
        from repro.ir.dsl import pad

        x = Param(ArrayType(FLOAT, 8), "x")
        body = map_glb(id_fun())(pad(1, 1)(x))
        with pytest.raises(CodeGenError):
            compile_kernel(Lambda([x], body))


class TestRemainingArith:
    def test_pow_symbolic(self):
        k = Var("k")
        e = pow_(Cst(2), k)
        assert e.evaluate({"k": 5}) == 32

    def test_log2_of_power(self):
        assert log2(Cst(1024)) == Cst(10)
        k = Var("k")
        assert log2(pow_(Cst(2), k)) == k

    def test_log2_rejects_non_power(self):
        with pytest.raises(ValueError):
            Log2(Cst(6)).evaluate({})

    def test_load_index_is_opaque(self):
        li = LoadIndex("neigh", Cst(3) + Var("i"))
        assert simplify(li) == LoadIndex("neigh", simplify(Cst(3) + Var("i")))
        with pytest.raises(NotImplementedError):
            li.evaluate({"i": 1})

    def test_load_index_substitution(self):
        i = Var("i")
        li = LoadIndex("neigh", i)
        replaced = substitute(Sum([li, i]), {i: Cst(2)})
        assert replaced == Sum([LoadIndex("neigh", Cst(2)), Cst(2)]) or \
            simplify(replaced) == simplify(Sum([LoadIndex("neigh", Cst(2)), Cst(2)]))

    def test_free_vars_sees_into_load_index(self):
        i = Var("i")
        assert free_vars(LoadIndex("neigh", i * 2)) == {i}

    def test_walk_covers_all_nodes(self):
        e = Sum([Var("a"), Pow(Var("b"), Cst(2))])
        names = {n.name for n in walk(e) if isinstance(n, Var)}
        assert names == {"a", "b"}
