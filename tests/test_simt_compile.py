"""Tests for the closure-compilation tier (repro.opencl.simt_compile).

The compiled pipeline's contract is exact equivalence with both the
interpretive lane-batched walk and the scalar reference interpreter —
bitwise-identical buffers and identical counters.  The divergence/race
corpus in ``tests/test_simt.py`` already runs against all three tiers
through ``assert_engines_agree``; this module covers the compilation
machinery itself (pipeline caching, barrier segmentation, fallback
ordering, the written-buffer analysis) plus a randomized cross-engine
fuzz over the shared IL programs of ``tests/programs.py``.
"""

import numpy as np
import pytest

from repro.compiler.kernel import compile_and_run
from repro.compiler.options import CompilerOptions
from repro.opencl import (
    Buffer,
    OpenCLProgram,
    VectorizationError,
    launch,
)
from repro.opencl import simt_compile
from repro.opencl.simt import written_pointer_roots
from repro.benchsuite.common import ALL_BENCHMARKS
from tests.programs import partial_dot, simple_map_add_one
from tests.test_simt import ENGINES

_REDUCTION = """
kernel void REDUCE(const global float * restrict x, global float *out) {
  local float tmp[8];
  int l = get_local_id(0);
  tmp[l] = x[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = 4; s > 0; s = s / 2) {
    if (l < s) { tmp[l] = tmp[l] + tmp[l + s]; }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (l < 1) { out[get_group_id(0)] = tmp[0]; }
}
"""


class TestPipelineCache:
    def test_pipeline_compiles_once_per_parse(self):
        src = "kernel void K(global float *x) { x[get_global_id(0)] = 1.0f; }"
        a = OpenCLProgram(src)
        b = OpenCLProgram(src)  # shares the parse via the source LRU
        pa = simt_compile.get_pipeline(a.parsed, a.kernel())
        pb = simt_compile.get_pipeline(b.parsed, b.kernel())
        assert pa is not None
        assert pa is pb

    def test_unvectorizable_kernel_has_no_pipeline(self):
        src = """
        kernel void K(global float *x) {
          if (get_local_id(0) < 1) { barrier(CLK_LOCAL_MEM_FENCE); }
          x[get_global_id(0)] = 1.0f;
        }
        """
        program = OpenCLProgram(src)
        assert simt_compile.get_pipeline(program.parsed, program.kernel()) is None

    def test_segments_split_at_top_level_barriers(self):
        program = OpenCLProgram(_REDUCTION)
        pipeline = simt_compile.get_pipeline(program.parsed, program.kernel())
        assert pipeline is not None
        # pre-barrier block | barrier | loop + trailing if (the loop's
        # internal barrier stays inside its loop closure)
        assert pipeline.segment_count == 3

    def test_compiled_engine_runs_the_pipeline(self):
        n = 64
        program = OpenCLProgram(_REDUCTION)
        x = np.arange(n, dtype=float)
        out = Buffer.zeros(n // 8)
        launch(program, n, 8, {"x": Buffer.from_array(x), "out": out},
               engine="compiled")
        np.testing.assert_array_equal(out.data, x.reshape(-1, 8).sum(axis=1))


class TestEngineTiers:
    def test_compiled_strict_raises_on_unvectorizable(self):
        src = """
        kernel void K(global float *x, int n) {
          if (get_global_id(0) >= n) { return; }
          barrier(CLK_LOCAL_MEM_FENCE);
          x[get_global_id(0)] = 1.0f;
        }
        """
        program = OpenCLProgram(src)
        with pytest.raises(VectorizationError):
            launch(program, 4, 4, {"x": Buffer.zeros(4), "n": 4},
                   engine="compiled")
        with pytest.raises(VectorizationError):
            launch(program, 4, 4, {"x": Buffer.zeros(4), "n": 4},
                   engine="interp")

    def test_interp_tier_matches_compiled(self):
        program = OpenCLProgram(_REDUCTION)
        x = np.arange(64, dtype=float)
        results = []
        for engine in ("interp", "compiled"):
            out = Buffer.zeros(8)
            c = launch(program, 64, 8,
                       {"x": Buffer.from_array(x.copy()), "out": out},
                       engine=engine)
            results.append((out.data.copy(), vars(c)))
        np.testing.assert_array_equal(results[0][0], results[1][0])
        assert results[0][1] == results[1][1]

    def test_dynamic_race_still_falls_back_from_compiled(self):
        # The compiled tier inherits the dynamic hazard detection; under
        # ``auto`` a cross-lane race rolls back and re-runs scalar.
        src = """
        kernel void K(const global float * restrict x, global float *scratch,
                      global float *out) {
          int i = get_global_id(0);
          scratch[0] = x[i];
          out[i] = scratch[0] * 2.0f;
        }
        """
        program = OpenCLProgram(src)
        assert simt_compile.get_pipeline(program.parsed, program.kernel()) is not None
        x = np.arange(8, dtype=float)

        def args():
            return {"x": Buffer.from_array(x.copy()),
                    "scratch": Buffer.zeros(1), "out": Buffer.zeros(8)}

        a_s = args()
        c_s = launch(program, 8, 4, a_s, engine="scalar")
        a_auto = args()
        c_auto = launch(program, 8, 4, a_auto)
        np.testing.assert_array_equal(a_s["out"].data, a_auto["out"].data)
        assert vars(c_s) == vars(c_auto)
        with pytest.raises(VectorizationError):
            launch(program, 8, 4, args(), engine="compiled")


class TestOversizedWorkGroups:
    def test_local_hazard_handles_groups_beyond_seg_scale(self):
        # A single work-group larger than _HazardLocal.SEG_SCALE lanes
        # cannot use the packed detector (lane ids would not fit the
        # encoding); the launcher must pick the general detector and the
        # race-free kernel must stay on the lane-batched path.
        from repro.opencl.simt import _HazardLocal

        n = _HazardLocal.SEG_SCALE * 2
        src = """
        kernel void K(const global float * restrict x, global float *out) {
          local float tmp[%d];
          int l = get_local_id(0);
          tmp[l] = x[l];
          barrier(CLK_LOCAL_MEM_FENCE);
          float v = tmp[%d];
          barrier(CLK_LOCAL_MEM_FENCE);
          out[l] = tmp[l] + v;
        }
        """ % (n, n - 100)
        program = OpenCLProgram(src)
        x = np.arange(n, dtype=float)
        out = Buffer.zeros(n)
        launch(program, n, n, {"x": Buffer.from_array(x), "out": out},
               engine="compiled")  # must not raise VectorizationError
        np.testing.assert_array_equal(out.data, x + x[n - 100])


class TestMemberAccess:
    def test_struct_member_named_like_a_swizzle(self):
        # "scale" starts with "s" but is a struct member, not a vector
        # swizzle; the pipeline must compile and agree with scalar.
        src = """
        typedef struct { float scale; float shift; } P;
        kernel void K(const global float * restrict x, global float *out) {
          int i = get_global_id(0);
          P p;
          p.scale = 2.0f;
          p.shift = 1.0f;
          out[i] = x[i] * p.scale + p.shift;
        }
        """
        program = OpenCLProgram(src)
        assert simt_compile.get_pipeline(program.parsed, program.kernel()) is not None
        x = np.arange(8, dtype=float)
        results = []
        for engine in ENGINES:
            out = Buffer.zeros(8)
            c = launch(program, 8, 4,
                       {"x": Buffer.from_array(x.copy()), "out": out},
                       engine=engine)
            results.append((out.data.copy(), vars(c)))
        for out, counters in results[1:]:
            np.testing.assert_array_equal(results[0][0], out)
            assert counters == results[0][1]

    def test_non_xyzw_vector_member_store_raises_like_the_interpreter(self):
        # The engines' _VEC_MEMBERS lookup raises KeyError for stores to
        # swizzle members outside x/y/z/w; the compiled tier must not
        # silently broadcast instead.
        src = """
        kernel void K(global float *out) {
          int i = get_global_id(0);
          float4 v;
          v.s0 = 9.0f;
          out[i] = v.x + v.y;
        }
        """
        program = OpenCLProgram(src)
        for engine in ENGINES:
            with pytest.raises(KeyError):
                launch(program, 4, 4, {"out": Buffer.zeros(4)}, engine=engine)


class TestWrittenRootsAnalysis:
    def _roots(self, src):
        program = OpenCLProgram(src)
        return written_pointer_roots(program.parsed, program.kernel())

    def test_read_only_params_excluded(self):
        roots = self._roots("""
        kernel void K(const global float * restrict x, global float *out) {
          out[get_global_id(0)] = x[get_global_id(0)];
        }
        """)
        assert "out" in roots
        assert "x" not in roots

    def test_pointer_flow_through_assignment(self):
        roots = self._roots("""
        kernel void K(global float *a, global float *b, int pick) {
          global float *p = a;
          if (pick > 0) { p = b; }
          p[get_global_id(0)] = 1.0f;
        }
        """)
        assert {"p", "a", "b"} <= set(roots)

    def test_vstore_marks_pointer(self):
        roots = self._roots("""
        kernel void K(const global float * restrict x, global float *out) {
          vstore4(vload4(get_global_id(0), x), get_global_id(0), out);
        }
        """)
        assert "out" in roots
        assert "x" not in roots

    def test_local_buffer_is_written(self):
        roots = self._roots(_REDUCTION)
        assert "tmp" in roots
        assert "out" in roots
        assert "x" not in roots

    def test_aliased_buffer_stays_correct(self):
        # The same array passed under a written and an unwritten name:
        # the launcher tracks by array identity, so the read through the
        # "read-only" name still participates in race detection and the
        # scalar result is reproduced exactly.
        src = """
        kernel void K(const global float * restrict x, global float *out) {
          int i = get_global_id(0);
          out[i] = x[0] + (float) i;
        }
        """
        program = OpenCLProgram(src)
        shared = Buffer.from_array(np.zeros(8))
        c_auto = launch(program, 8, 4, {"x": shared, "out": shared})
        expected = Buffer.from_array(np.zeros(8))
        c_s = launch(
            program, 8, 4,
            {"x": expected, "out": expected}, engine="scalar",
        )
        np.testing.assert_array_equal(shared.data, expected.data)
        assert vars(c_auto) == vars(c_s)


class TestCrossEngineFuzz:
    """Randomized differential testing over the shared IL programs."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("level", ["none", "all"])
    def test_partial_dot_fuzz(self, seed, level):
        n = 256
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        factory = CompilerOptions.none if level == "none" else CompilerOptions.all

        def run(engine):
            return compile_and_run(
                partial_dot(), {"x": x, "y": y}, {"N": n},
                global_size=128, options=factory(local_size=(64, 1, 1)),
                engine=engine,
            )

        ref = run("scalar")
        # ``auto`` and the graceful ``fused`` chain must reproduce the
        # scalar result bit for bit even when the lane-batched tiers
        # bail out dynamically.
        for engine in ("auto", "fused"):
            graceful = run(engine)
            np.testing.assert_array_equal(ref.output, graceful.output)
            assert vars(ref.counters) == vars(graceful.counters)
        # Strict tiers must agree whenever they accept the kernel; a
        # dynamic refusal (e.g. masked int/float mixing at level
        # ``none``) is a legitimate outcome, not a failure.
        for engine in ("interp", "compiled"):
            try:
                strict = run(engine)
            except VectorizationError:
                continue
            np.testing.assert_array_equal(
                ref.output, strict.output,
                err_msg=f"{engine} output differs",
            )
            assert vars(ref.counters) == vars(strict.counters), (
                f"{engine} counters differ"
            )

    @pytest.mark.parametrize("seed", range(5))
    def test_map_add_one_fuzz(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.choice([16, 32, 64, 128]))
        x = rng.standard_normal(n)
        results = []
        for engine in ENGINES:
            run = compile_and_run(
                simple_map_add_one(), {"x": x}, {"N": n}, global_size=n,
                options=CompilerOptions.all(local_size=(16, 1, 1)),
                engine=engine,
            )
            results.append((run.output.copy(), vars(run.counters)))
        for engine, (out, counters) in zip(ENGINES[1:], results[1:]):
            np.testing.assert_array_equal(results[0][0], out)
            assert counters == results[0][1]


class TestCrossBackendBenchsuite:
    """The whole benchsuite is bitwise-identical on the fused backend.

    Every reference program of the suite runs under ``engine="fused"``
    (whole-grid execution, fused or generic segments, fallback chain)
    and must reproduce the scalar interpreter's buffers *and* counters
    exactly; the heavier generated-kernel pipelines are spot-checked on
    the benchmarks covering local-memory staging, 2-D launches and
    helper-function calls.
    """

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_reference_bitwise_on_fused(self, name):
        from repro.benchsuite.common import get_benchmark

        bench = get_benchmark(name)
        inputs, size_env = bench.inputs_for("small")
        out_s, c_s = bench.run_reference(inputs, size_env, engine="scalar")
        out_f, c_f = bench.run_reference(inputs, size_env, engine="fused")
        np.testing.assert_array_equal(out_s, out_f)
        assert vars(c_s) == vars(c_f)

    @pytest.mark.parametrize("name", ["gemv", "mm-nvidia", "nbody-nvidia"])
    def test_generated_bitwise_on_fused(self, name):
        from repro.benchsuite.common import get_benchmark

        bench = get_benchmark(name)
        inputs, size_env = bench.inputs_for("small")
        out_s, c_s = bench.run_generated(inputs, size_env, engine="scalar")
        out_f, c_f = bench.run_generated(inputs, size_env, engine="fused")
        np.testing.assert_array_equal(out_s, out_f)
        assert vars(c_s) == vars(c_f)


class TestWholeGridLayout:
    def test_fused_runs_the_launch_as_one_block(self):
        # The acceptance witness for "zero per-work-group Python loop
        # iterations": the whole-grid geometry holds every work-group in
        # a single block, where the blocked tiers would iterate.
        from repro.opencl.simt import MAX_LANES, _block_geometry

        gsize, lsize = (4 * MAX_LANES, 1, 1), (64, 1, 1)
        blocked = _block_geometry(gsize, lsize)
        grid = _block_geometry(gsize, lsize, whole_grid=True)
        assert len(blocked["blocks"]) > 1
        assert len(grid["blocks"]) == 1
        assert grid["blocks"][0]["lanes"] == 4 * MAX_LANES
