"""High-level IL semantics for the vector-typed benchmarks.

These complement test_benchsuite.py's generic check: N-Body, MD and
MRI-Q use float2/float4 values and tuple zips, so their inputs need
explicit conversion into the interpreter's value representation.
"""

import numpy as np
import pytest

from repro.ir.interp import VecValue, apply_fun
from repro.benchsuite.common import get_benchmark


def as_vec4_list(flat: np.ndarray) -> list:
    return [VecValue(chunk) for chunk in flat.reshape(-1, 4).tolist()]


def flatten_vecs(values) -> np.ndarray:
    return np.asarray([lane for v in values for lane in v.items], dtype=float)


class TestNBodyHighLevel:
    def test_matches_oracle(self):
        bench = get_benchmark("nbody-amd")
        inputs, env = bench.inputs_for("small")
        env = {"N": 32}
        rng = np.random.default_rng(5)
        inputs = bench.make_inputs(env, rng)
        program = bench.high_level(env)
        result = apply_fun(
            program,
            [
                as_vec4_list(inputs["pos"]),
                as_vec4_list(inputs["vel"]),
                inputs["deltaT"],
                inputs["espSqr"],
            ],
            env,
        )
        expected = bench.oracle(inputs, env)
        np.testing.assert_allclose(flatten_vecs(result), expected, rtol=1e-7)


class TestMDHighLevel:
    def test_matches_oracle(self):
        bench = get_benchmark("md")
        env = {"N": 32, "J": 8}
        rng = np.random.default_rng(6)
        inputs = bench.make_inputs(env, rng)
        program = bench.high_level(env)
        result = apply_fun(
            program,
            [
                inputs["px"].tolist(),
                inputs["py"].tolist(),
                inputs["pz"].tolist(),
                inputs["neigh"].ravel().tolist(),
            ],
            env,
        )
        expected = bench.oracle(inputs, env)
        np.testing.assert_allclose(flatten_vecs(result), expected, rtol=1e-7)


class TestMRIQHighLevel:
    def test_matches_oracle(self):
        bench = get_benchmark("mriq")
        env = {"N": 16, "M": 8}
        rng = np.random.default_rng(7)
        inputs = bench.make_inputs(env, rng)
        program = bench.high_level(env)
        result = apply_fun(
            program,
            [inputs[k].tolist() for k in ("x", "y", "z", "kx", "ky", "kz", "mag")],
            env,
        )
        expected = bench.oracle(inputs, env)
        np.testing.assert_allclose(flatten_vecs(result), expected, rtol=1e-7)


class TestKernelOutputsAgree:
    """The three versions of each vector benchmark agree pairwise."""

    @pytest.mark.parametrize("name", ["nbody-amd", "md", "mriq"])
    def test_reference_equals_generated(self, name):
        bench = get_benchmark(name)
        inputs, env = bench.inputs_for("small", seed=11)
        ref, _ = bench.run_reference(inputs, env)
        gen, _ = bench.run_generated(inputs, env)
        np.testing.assert_allclose(ref, gen, rtol=1e-9)
