"""Shared Lift IL programs used across the test suite.

The central one is the paper's Listing 1: the partial dot product.
"""

from repro.arith import Var
from repro.types import ArrayType, FLOAT
from repro.ir.nodes import FunCall, Lambda, Param
from repro.ir.dsl import (
    add,
    compose,
    f32,
    get,
    id_fun,
    iterate,
    join,
    lam,
    lam2,
    map_lcl,
    map_seq,
    map_wrg,
    mult_and_sum_up,
    reduce_seq,
    split,
    to_global,
    to_local,
    zip_,
)


def partial_dot(n=None):
    """Listing 1: the partial dot product, one work-group per 128 elements.

    Returns a ``Lambda`` with two array parameters of length ``n`` (a fresh
    ``N`` variable if not given).
    """
    length = n if n is not None else Var("N")
    x = Param(ArrayType(FLOAT, length), "x")
    y = Param(ArrayType(FLOAT, length), "y")

    musu = mult_and_sum_up()
    reduce_pairs = lam2(
        lambda acc, xy: FunCall(musu, [acc, get(xy, 0), get(xy, 1)])
    )

    work_group = compose(
        join(),
        to_global(map_lcl(map_seq(id_fun()))),
        split(1),
        iterate(
            6,
            compose(
                join(),
                map_lcl(compose(to_local(map_seq(id_fun())), reduce_seq(add(), f32(0.0)))),
                split(2),
            ),
        ),
        join(),
        map_lcl(compose(to_local(map_seq(id_fun())), reduce_seq(reduce_pairs, f32(0.0)))),
        split(2),
    )

    body = compose(join(), map_wrg(work_group), split(128))(zip_(x, y))
    return Lambda([x, y], body)


def simple_map_add_one(n=None):
    """mapGlb(plus_one) over a float array — the smallest useful kernel."""
    from repro.ir.dsl import map_glb
    from repro.ir.nodes import UserFun

    length = n if n is not None else Var("N")
    x = Param(ArrayType(FLOAT, length), "x")
    plus_one = UserFun(
        "plusOne", ["v"], "return v + 1.0f;", [FLOAT], FLOAT, py=lambda v: v + 1.0
    )
    return Lambda([x], map_glb(plus_one)(x))
