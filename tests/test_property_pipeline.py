"""Property-based differential testing of the whole compiler.

Random compositions of data-layout patterns are applied to an input
array, materialized with a parallel map, compiled to OpenCL and executed
on the simulator — the result must match the reference IR interpreter
for every optimization level.  This is the strongest single check of the
view system's correctness.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.types import ArrayType, FLOAT
from repro.ir.nodes import FunCall, Lambda, Param, UserFun
from repro.ir.dsl import (
    compose,
    gather,
    join,
    map_glb,
    scatter,
    split,
    transpose,
)
from repro.ir.patterns import reverse_indices, shift_indices, stride_indices
from repro.ir.interp import apply_fun
from repro.compiler.kernel import compile_and_run
from repro.compiler.options import CompilerOptions

N = 24  # divisible by 2, 3, 4, 6, 8, 12


def plus_one():
    return UserFun("plusOne", ["v"], "return v + 1.0f;", [FLOAT], FLOAT,
                   py=lambda v: v + 1.0)


# Length-preserving layout transformations on a 1-D array of length N.
_LAYOUT_STAGES = {
    "reverse": lambda: [gather(reverse_indices())],
    "shift3": lambda: [gather(shift_indices(3))],
    "shift7": lambda: [gather(shift_indices(7))],
    "stride4": lambda: [gather(stride_indices(4))],
    "split2_join": lambda: [join(), split(2)],
    "split4_join": lambda: [join(), split(4)],
    "transpose_6x4": lambda: [join(), transpose(), split(4)],
    "transpose_3x8": lambda: [join(), transpose(), split(8)],
}

_stage_names = st.lists(
    st.sampled_from(sorted(_LAYOUT_STAGES)), min_size=0, max_size=4
)

_levels = st.sampled_from(["none", "barrier_cf", "all"])


def _build_program(stage_names):
    x = Param(ArrayType(FLOAT, N), "x")
    fs = [map_glb(plus_one())]
    for name in stage_names:
        fs.extend(_LAYOUT_STAGES[name]())
    return Lambda([x], compose(*fs)(x))


@given(_stage_names, _levels)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_read_pipelines_match_interpreter(stage_names, level):
    """map(plusOne) after a random chain of layout views."""
    program = _build_program(stage_names)
    data = np.arange(N, dtype=float)

    expected = apply_fun(program, [data.tolist()], {})
    options = {
        "none": CompilerOptions.none,
        "barrier_cf": CompilerOptions.barrier_cf,
        "all": CompilerOptions.all,
    }[level](local_size=(8, 1, 1))
    result = compile_and_run(
        program, {"x": data}, {}, global_size=N, options=options
    )
    np.testing.assert_allclose(result.output, np.asarray(expected, dtype=float))


_write_perms = st.sampled_from(["reverse", "shift3", "stride4"])


@given(_write_perms, _levels)
@settings(max_examples=30, deadline=None)
def test_scatter_write_pipelines_match_interpreter(perm_name, level):
    """Writing through a scatter permutation."""
    perms = {
        "reverse": reverse_indices,
        "shift3": lambda: shift_indices(3),
        "stride4": lambda: stride_indices(4),
    }
    x = Param(ArrayType(FLOAT, N), "x")
    body = scatter(perms[perm_name]())(map_glb(plus_one())(x))
    program = Lambda([x], body)
    data = np.arange(N, dtype=float)

    expected = apply_fun(program, [data.tolist()], {})
    options = {
        "none": CompilerOptions.none,
        "barrier_cf": CompilerOptions.barrier_cf,
        "all": CompilerOptions.all,
    }[level](local_size=(8, 1, 1))
    result = compile_and_run(
        program, {"x": data}, {}, global_size=N, options=options
    )
    np.testing.assert_allclose(result.output, np.asarray(expected, dtype=float))


@given(st.integers(1, 6), st.integers(0, 11))
@settings(max_examples=40, deadline=None)
def test_gather_scatter_roundtrip(shift_a, shift_b):
    """scatter(f) o gather(f) over any writes is the identity layout."""
    x = Param(ArrayType(FLOAT, N), "x")
    body = scatter(shift_indices(shift_a))(
        map_glb(plus_one())(gather(shift_indices(shift_a))(x))
    )
    program = Lambda([x], body)
    data = np.arange(N, dtype=float) + shift_b
    result = compile_and_run(
        program, {"x": data}, {}, global_size=N,
        options=CompilerOptions(local_size=(8, 1, 1)),
    )
    np.testing.assert_allclose(result.output, data + 1.0)
