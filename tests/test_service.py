"""The autotune service layer: deterministic retry jitter, deadline
propagation, per-backend circuit breakers, bounded admission with
backpressure, single-flight coalescing, the write-ahead recovery
journal (including a real SIGKILL mid-flight), graceful drain, and the
hammer soak's bitwise contract under a chaos fault plan."""

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import numpy as np
import pytest

import repro
from repro import faultinject, obs
from repro.arith import Var
from repro.backend import ledger
from repro.cache import TuningCache
from repro.compiler.kernel import compile_and_run
from repro.compiler.options import CompilerOptions
from repro.ir.dsl import map_
from repro.ir.nodes import Lambda, Param, UserFun
from repro.opencl import Buffer, OpenCLProgram, launch
from repro.resilience import (
    Cancelled,
    CancellationToken,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    deterministic_jitter,
)
from repro.rewrite import lower_to_global
from repro.rewrite.explore import ExploreConfig, explore_program
from repro.service import (
    AdmissionQueue,
    BreakerBoard,
    BreakerConfig,
    CircuitBreaker,
    JournalEntry,
    RecoveryJournal,
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
    ServiceRequest,
    ServiceResponse,
    ServiceStats,
    TuningService,
    board_installed,
)
from repro.types import ArrayType, FLOAT


@pytest.fixture(autouse=True)
def _clean_slate():
    """Injection off and an empty ledger around every test; any ambient
    plan (the chaos CI job's REPRO_FAULT_PLAN) is restored afterwards."""
    with faultinject.plan_installed(None):
        ledger.clear()
        yield
    ledger.clear()


def _toy_program():
    n = Var("N")
    x = Param(ArrayType(FLOAT, n), "x")
    double = UserFun("dbl", ["v"], "return v * 2.0f;", [FLOAT], FLOAT,
                     py=lambda v: v * 2.0)
    return Lambda([x], map_(double)(x))


def _toy_payload(n=32, scale=1.0):
    """Submission kwargs for one toy run request (distinct ``scale``
    values give distinct request identities)."""
    return dict(
        program=lower_to_global(_toy_program()),
        inputs={"x": scale * np.arange(n, dtype=float)},
        size_env={"N": n},
        global_size=(n, 1, 1),
        local_size=(8, 1, 1),
        options=CompilerOptions(local_size=(8, 1, 1)),
    )


def _toy_baseline(payload):
    result = compile_and_run(
        payload["program"], payload["inputs"], payload["size_env"],
        payload["global_size"], options=payload["options"],
        local_size=payload["local_size"],
    )
    return result.output, result.counters


def _service(tmp_path, **overrides):
    kwargs = dict(
        workers=2,
        max_queue=8,
        journal_dir=str(tmp_path / "journal"),
        drain_timeout=5.0,
    )
    kwargs.update(overrides)
    return TuningService(
        cache=TuningCache(tmp_path / "cache"), config=ServiceConfig(**kwargs)
    )


# ---------------------------------------------------------------------------
# deterministic jitter (satellite: RetryPolicy backoff)
# ---------------------------------------------------------------------------

class TestDeterministicJitter:
    def test_pure_function_of_key_and_attempt(self):
        assert deterministic_jitter("req-1", 0, 0.25) == deterministic_jitter(
            "req-1", 0, 0.25
        )
        assert deterministic_jitter("req-1", 0, 0.25) != deterministic_jitter(
            "req-1", 1, 0.25
        )
        assert deterministic_jitter("req-1", 0, 0.25) != deterministic_jitter(
            "req-2", 0, 0.25
        )

    def test_bounded_by_spread(self):
        for attempt in range(32):
            m = deterministic_jitter("key", attempt, 0.25)
            assert 0.75 <= m <= 1.25

    def test_zero_spread_is_identity(self):
        assert deterministic_jitter("key", 3, 0.0) == 1.0

    def test_policy_delays_replay_per_key(self):
        policy = RetryPolicy(attempts=4, base_delay=0.1, jitter=0.5)
        a = list(policy.delays("request-a"))
        assert a == list(policy.delays("request-a"))
        assert a != list(policy.delays("request-b"))
        bare = list(RetryPolicy(attempts=4, base_delay=0.1).delays())
        assert a != bare
        for jittered, base in zip(a, bare):
            assert 0.5 * base <= jittered <= 1.5 * base

    def test_policy_call_uses_jittered_delays(self):
        slept = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "done"

        policy = RetryPolicy(attempts=3, base_delay=0.1, jitter=0.5)
        assert policy.call(flaky, sleep=slept.append, key="req") == "done"
        assert slept == list(policy.delays("req"))[:2]


# ---------------------------------------------------------------------------
# deadline propagation (satellite: remaining budget bounds each stage)
# ---------------------------------------------------------------------------

class TestDeadlinePropagation:
    def test_clamp_is_min_of_timeout_and_remaining(self):
        deadline = Deadline.after(10.0)
        assert deadline.clamp(1.0) == 1.0
        assert 9.0 < deadline.clamp(None) <= 10.0
        assert 9.0 < deadline.clamp(100.0) <= 10.0
        assert Deadline.after(-1.0).clamp(5.0) == 0.0

    def test_expired_deadline_aborts_exploration(self):
        config = ExploreConfig(
            depth=2, max_eval=4, deadline=Deadline.after(0.0),
            candidate_timeout=5.0,
        )
        result = explore_program(
            _toy_program(), {"x": np.arange(32, dtype=float)}, {"N": 32},
            config=config,
        )
        assert result.stats.aborted
        assert not result.candidates
        assert result.failures
        assert all(f.kind == "timeout" for f in result.failures)

    def test_generous_deadline_matches_unbounded_search(self):
        inputs = {"x": np.arange(32, dtype=float)}
        free = explore_program(
            _toy_program(), inputs, {"N": 32},
            config=ExploreConfig(depth=2, max_eval=4),
        )
        bounded = explore_program(
            _toy_program(), inputs, {"N": 32},
            config=ExploreConfig(
                depth=2, max_eval=4, deadline=Deadline.after(120.0),
                candidate_timeout=30.0,
            ),
        )
        assert [c.trace for c in bounded.candidates] == [
            c.trace for c in free.candidates
        ]
        assert not bounded.stats.aborted


# ---------------------------------------------------------------------------
# circuit breakers
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def _breaker(self, **cfg):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            "fused",
            BreakerConfig(**cfg) if cfg else BreakerConfig(),
            clock=lambda: clock["now"],
        )
        return breaker, clock

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self._breaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self._breaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        breaker, clock = self._breaker(
            failure_threshold=1, reset_timeout=10.0, half_open_probes=1
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock["now"] = 11.0
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe admitted
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self._breaker(failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure()
        clock["now"] = 11.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_no_verdict_probe_releases_its_slot(self):
        """A probed launch that ends in a static/dynamic decline —
        neither success nor failure — must give the slot back, or the
        breaker would reject every launch forever."""
        breaker, clock = self._breaker(
            failure_threshold=1, reset_timeout=10.0, half_open_probes=1
        )
        breaker.record_failure()
        clock["now"] = 11.0
        assert breaker.allow()  # the probe slot
        assert not breaker.allow()
        breaker.release_probe()  # launch declined with no health verdict
        assert breaker.allow()  # the slot is free again
        breaker.record_success()
        assert breaker.state == "closed"

    def test_release_probe_outside_half_open_is_a_no_op(self):
        breaker, _ = self._breaker(failure_threshold=1)
        breaker.release_probe()  # closed: no slot was consumed
        assert breaker.allow()
        assert breaker.allow()  # closed launches are unlimited

    def test_stale_half_open_probe_reclaimed_after_cooldown(self):
        """Backstop: a probe whose launch never reports any verdict at
        all is reclaimed after another ``reset_timeout``."""
        breaker, clock = self._breaker(
            failure_threshold=1, reset_timeout=10.0, half_open_probes=1
        )
        breaker.record_failure()
        clock["now"] = 11.0
        assert breaker.allow()  # probe consumed; verdict never arrives
        assert not breaker.allow()
        clock["now"] = 22.0  # a full cool-down later
        assert breaker.state == "half-open"
        assert breaker.allow()  # the lost slot was reclaimed

    def test_board_snapshot_and_open_count(self):
        board = BreakerBoard(BreakerConfig(failure_threshold=1))
        board.failure("fused")
        board.success("compiled")
        snap = board.snapshot()
        assert snap["fused"]["state"] == "open"
        assert snap["compiled"]["state"] == "closed"
        assert board.open_count() == 1


SAXPY = """
kernel void SAXPY(const global float * restrict x,
                  const global float * restrict y,
                  global float *out, float a, int n) {
  int i = get_global_id(0);
  if (i < n) { out[i] = a * x[i] + y[i]; }
}
"""


def _run_saxpy(engine=None, n=32, local=8):
    program = OpenCLProgram(SAXPY)
    args = {
        "x": Buffer.from_array(np.arange(n, dtype=float)),
        "y": Buffer.from_array(np.ones(n)),
        "out": Buffer.zeros(n),
        "a": 2.0,
        "n": n,
    }
    launch(program, n, local, args, engine=engine)
    return args["out"].data.copy()


class TestBreakerChainIntegration:
    def test_open_breaker_skips_tier_and_is_ledgered(self):
        clean = _run_saxpy(engine="auto")
        board = BreakerBoard(
            BreakerConfig(failure_threshold=2, reset_timeout=60.0)
        )
        with board_installed(board):
            with faultinject.plan_installed("seed=1;backend-run=1.0"):
                # Certain injection: every launch declines the non-final
                # members with a fault, feeding their breakers.
                for _ in range(2):
                    out = _run_saxpy(engine="auto")
                    np.testing.assert_array_equal(out, clean)
            assert board.open_count() >= 1
            # Injection off again: the open breaker (not a fault) now
            # skips the tier pre-emptively, the result stays identical.
            out = _run_saxpy(engine="auto")
        np.testing.assert_array_equal(out, clean)
        counts = ledger.counts()
        breaker_declines = {
            key: n for key, n in counts.items() if key[2] == "breaker"
        }
        assert breaker_declines, f"no breaker declines in {counts}"

    def test_no_board_installed_is_a_no_op(self):
        clean = _run_saxpy(engine="auto")
        assert not any(k[2] == "breaker" for k in ledger.counts())
        np.testing.assert_array_equal(clean, _run_saxpy(engine="auto"))

    def test_static_decline_probe_does_not_wedge_the_breaker(self):
        """A half-open probe that ends in a static capability refusal
        (no health verdict) must release its slot: the tier keeps being
        probed instead of staying half-open, rejected forever."""
        from repro.backend import (
            Backend,
            CompileUnsupported,
            register_backend,
            register_engine,
        )
        from repro.backend import registry as registry_mod

        class Refuser(Backend):
            name = "test-refuser"
            dynamic_class = "test"

            def plan(self, parsed, kernel):
                raise CompileUnsupported("always declines")

        clock = {"now": 0.0}
        board = BreakerBoard(
            BreakerConfig(
                failure_threshold=1, reset_timeout=10.0, half_open_probes=1
            ),
            clock=lambda: clock["now"],
        )
        clean = _run_saxpy(engine="scalar")
        try:
            register_backend(Refuser())
            register_engine(
                "test-refuser-chain", ("test-refuser", "scalar")
            )
            board.failure("test-refuser")  # breaker opens
            clock["now"] = 11.0  # half-open: launches are probes now
            with board_installed(board):
                for _ in range(3):
                    out = _run_saxpy(engine="test-refuser-chain")
                    np.testing.assert_array_equal(out, clean)
            # Every static decline released its probe slot, so the
            # breaker never rejected a launch pre-emptively.
            assert not any(
                key[2] == "breaker" for key in ledger.counts()
            ), ledger.counts()
            assert board.breaker("test-refuser").state == "half-open"
        finally:
            registry_mod._BACKENDS.pop("test-refuser", None)
            registry_mod._ENGINES.pop("test-refuser-chain", None)


# ---------------------------------------------------------------------------
# admission queue + response promise
# ---------------------------------------------------------------------------

def _request(key="k", request_id="r-1"):
    return ServiceRequest(
        id=request_id, kind="run", key=key, work=lambda req: None,
        response=ServiceResponse(request_id), token=CancellationToken(),
    )


class TestAdmission:
    def test_bounded_queue_rejects_when_full(self):
        queue = AdmissionQueue(capacity=2)
        queue.submit(_request(request_id="a"))
        queue.submit(_request(request_id="b"))
        with pytest.raises(ServiceOverloaded):
            queue.submit(_request(request_id="c"))
        assert queue.depth() == 2

    def test_closed_queue_rejects_but_drains(self):
        queue = AdmissionQueue(capacity=4)
        queue.submit(_request(request_id="a"))
        queue.close()
        with pytest.raises(ServiceClosed):
            queue.submit(_request(request_id="b"))
        assert queue.pop(timeout=0.1).id == "a"
        assert queue.pop(timeout=0.1) is None  # closed + empty

    def test_paused_queue_hands_out_nothing(self):
        queue = AdmissionQueue(capacity=4)
        queue.submit(_request(request_id="a"))
        queue.set_paused(True)
        assert queue.pop(timeout=0.05) is None
        queue.set_paused(False)
        assert queue.pop(timeout=0.1).id == "a"

    def test_drain_pending_empties_the_queue(self):
        queue = AdmissionQueue(capacity=4)
        queue.submit(_request(request_id="a"))
        queue.submit(_request(request_id="b"))
        drained = queue.drain_pending()
        assert [r.id for r in drained] == ["a", "b"]
        assert queue.depth() == 0

    def test_response_result_times_out(self):
        response = ServiceResponse("r-1")
        with pytest.raises(TimeoutError):
            response.result(timeout=0.05)
        response.complete(42)
        assert response.result(timeout=0.05) == 42
        assert response.ok

    def test_response_fail_reraises(self):
        response = ServiceResponse("r-1")
        response.fail(ValueError("boom"))
        assert response.done and not response.ok
        with pytest.raises(ValueError):
            response.result(timeout=0.05)


# ---------------------------------------------------------------------------
# recovery journal
# ---------------------------------------------------------------------------

class TestRecoveryJournal:
    def test_begin_pending_commit_roundtrip(self, tmp_path):
        journal = RecoveryJournal(tmp_path)
        entry = JournalEntry("r-1", "run", "hash", {"benchmark": "nn"})
        assert journal.begin(entry)
        assert len(journal) == 1
        [pending] = journal.pending()
        assert pending.request_id == "r-1"
        assert pending.spec == {"benchmark": "nn"}
        journal.commit("r-1")
        assert len(journal) == 0 and not journal.pending()
        journal.commit("r-1")  # idempotent

    def test_pending_sorted_by_sequence(self, tmp_path):
        journal = RecoveryJournal(tmp_path)
        for rid in ("r-z", "r-a", "r-m"):
            journal.begin(JournalEntry(rid, "run", "h", None))
        assert [e.request_id for e in journal.pending()] == [
            "r-z", "r-a", "r-m"
        ]

    def test_corrupt_entry_quarantined_not_dropped(self, tmp_path):
        journal = RecoveryJournal(tmp_path)
        journal.begin(JournalEntry("r-1", "run", "h", None))
        (tmp_path / "r-2.journal").write_text("{not json")
        (tmp_path / "r-3.journal").write_text(
            json.dumps({"version": 99, "id": "r-3"})
        )
        assert [e.request_id for e in journal.pending()] == ["r-1"]
        leftovers = sorted(p.name for p in tmp_path.glob("*.corrupt"))
        assert leftovers == ["r-2.journal.corrupt", "r-3.journal.corrupt"]

    def test_injected_journal_fault_degrades_to_unjournaled(self, tmp_path):
        journal = RecoveryJournal(tmp_path)
        with faultinject.plan_installed(
            "seed=1;service-journal=1.0;attempts=1"
        ):
            assert not journal.begin(JournalEntry("r-1", "run", "h", None))
        assert journal.skipped_writes == 1
        assert len(journal) == 0

    def test_quarantine_moves_entry_aside(self, tmp_path):
        journal = RecoveryJournal(tmp_path)
        journal.begin(JournalEntry("r-1", "run", "h", None))
        journal.quarantine("r-1")
        assert not journal.pending()
        assert (tmp_path / "r-1.journal.unrecoverable").exists()


# ---------------------------------------------------------------------------
# the service daemon
# ---------------------------------------------------------------------------

class TestTuningService:
    def test_run_result_matches_one_shot_path(self, tmp_path):
        payload = _toy_payload()
        base_out, base_counters = _toy_baseline(payload)
        with _service(tmp_path) as service:
            out, counters = service.submit_run(**payload).result(30.0)
        assert out.tobytes() == base_out.tobytes()
        assert counters == base_counters

    def test_warm_hit_bypasses_the_queue(self, tmp_path):
        payload = _toy_payload()
        with _service(tmp_path) as service:
            first = service.submit_run(**payload).result(30.0)
            admits_after_first = service.stats.admits
            second = service.submit_run(**payload).result(1.0)
            assert service.stats.warm_hits == 1
            assert service.stats.admits == admits_after_first
        assert first[0].tobytes() == second[0].tobytes()
        assert first[1] == second[1]

    def test_concurrent_duplicates_coalesce(self, tmp_path):
        payload = _toy_payload()
        with _service(tmp_path) as service:
            service.pause()
            responses = [
                service.submit_run(**payload) for _ in range(4)
            ]
            assert service.stats.coalesced == 3
            assert service.queue_depth() == 1
            service.resume()
            results = [r.result(30.0) for r in responses]
        assert len({out.tobytes() for out, _ in results}) == 1

    def test_full_queue_rejects_with_backpressure(self, tmp_path):
        with _service(tmp_path, workers=1, max_queue=1) as service:
            service.pause()
            service.submit_run(**_toy_payload(scale=1.0))
            with pytest.raises(ServiceOverloaded):
                service.submit_run(**_toy_payload(scale=2.0))
            assert service.stats.rejects == 1
            # The rejected request's journal entry was committed: only
            # the admitted one is on disk.
            assert len(service.journal) == 1
            service.resume()

    def test_submit_after_shutdown_raises_closed(self, tmp_path):
        service = _service(tmp_path)
        service.shutdown()
        with pytest.raises(ServiceClosed):
            service.submit_run(**_toy_payload())

    def test_expired_deadline_fails_with_timeout(self, tmp_path):
        with _service(tmp_path) as service:
            service.pause()
            response = service.submit_run(**_toy_payload(), timeout=0.01)
            time.sleep(0.05)
            service.resume()
            with pytest.raises(DeadlineExceeded):
                response.result(10.0)
            assert service.stats.timeouts == 1

    def test_injected_worker_faults_never_escape(self, tmp_path):
        payload = _toy_payload()
        base_out, base_counters = _toy_baseline(payload)
        with faultinject.plan_installed("seed=3;service-worker=0.4"):
            with _service(tmp_path) as service:
                out, counters = service.submit_run(**payload).result(30.0)
        assert out.tobytes() == base_out.tobytes()
        assert counters == base_counters

    def test_drain_cancels_queued_and_commits_their_journal(self, tmp_path):
        service = _service(tmp_path, workers=1)
        service.pause()
        responses = [
            service.submit_run(**_toy_payload(scale=float(i)))
            for i in range(1, 4)
        ]
        assert len(service.journal) == 3
        assert service.shutdown()  # drains: queued work is cancelled
        for response in responses:
            assert isinstance(response.error, Cancelled)
        assert service.stats.drained == 3
        # No orphaned journal entries after a graceful drain.
        assert len(service.journal) == 0

    def test_metrics_snapshot_carries_service_state(self, tmp_path):
        with _service(tmp_path) as service:
            service.submit_run(**_toy_payload()).result(30.0)
            doc = obs.snapshot()["service"]
            assert doc["active"]
            assert doc["stats"]["completed"] == 1
            assert doc["queue"]["capacity"] == 8
            assert "breakers" in doc and "journal" in doc
        assert not obs.snapshot()["service"]["active"]

    def test_shutdown_restores_the_previous_metrics_view(self, tmp_path):
        with _service(tmp_path / "outer") as outer:
            outer.submit_run(**_toy_payload()).result(30.0)
            inner = _service(tmp_path / "inner")
            inner.shutdown()
            # The inner shutdown restores the still-running outer
            # service's view rather than clobbering the slot.
            doc = obs.snapshot()["service"]
            assert doc["active"]
            assert doc["stats"]["completed"] == 1
        # The last shutdown leaves no stale stats in the snapshot.
        doc = obs.snapshot()["service"]
        assert not doc["active"]
        assert "stats" not in doc

    def test_stats_bump_is_thread_safe(self):
        stats = ServiceStats()

        def hammer():
            for _ in range(5000):
                stats.bump("admits")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.admits == 40000
        assert stats.as_dict()["admits"] == 40000

    def test_tune_request_runs_exploration(self, tmp_path):
        with _service(tmp_path) as service:
            result = service.submit_tune(
                _toy_program(), {"x": np.arange(32, dtype=float)}, {"N": 32},
                depth=2, max_eval=4,
            ).result(120.0)
        assert result.candidates
        assert result.best().runtime is not None


# ---------------------------------------------------------------------------
# crash recovery
# ---------------------------------------------------------------------------

def _toy_resolver(entry):
    spec = entry.spec or {}
    if spec.get("kind") != "toy":
        return None
    return _toy_payload(n=spec["n"], scale=spec["scale"])


class TestRecovery:
    def test_recover_reenqueues_orphans(self, tmp_path):
        journal_dir = tmp_path / "journal"
        journal = RecoveryJournal(journal_dir)
        for i in (1, 2):
            journal.begin(
                JournalEntry(
                    f"orphan-{i}", "run", "",
                    {"kind": "toy", "n": 32, "scale": float(i)},
                )
            )
        with _service(tmp_path) as service:
            assert service.recover(_toy_resolver) == 2
            assert service.stats.replayed == 2
            deadline = time.monotonic() + 30.0
            while service.stats.completed < 2:
                assert time.monotonic() < deadline
                time.sleep(0.01)
        # Replay is idempotent through the cache and commits on
        # completion: nothing pending afterwards.
        assert not RecoveryJournal(journal_dir).pending()
        for i in (1, 2):
            payload = _toy_payload(scale=float(i))
            base_out, _ = _toy_baseline(payload)
            cache = TuningCache(tmp_path / "cache")
            kernel_key = cache.kernel_key(
                payload["program"], payload["options"], payload["size_env"]
            )
            from repro.cache import fingerprint_inputs

            run_key = cache.run_key(
                kernel_key, fingerprint_inputs(payload["inputs"]),
                payload["global_size"], payload["local_size"], None,
            )
            hit = cache.get_run(run_key)
            assert hit is not None
            assert hit[0].tobytes() == base_out.tobytes()

    def test_rejected_recovery_reenqueue_keeps_the_orphan(self, tmp_path):
        """A recovery re-enqueue that hits a full queue must leave the
        orphan's journal entry on disk for a later recover() — the
        rejection handler may only unlink entries it created itself."""
        with _service(tmp_path, workers=1, max_queue=1) as service:
            service.pause()
            # Fill the single queue slot with an unrelated cold request.
            filler = service.submit_run(**_toy_payload(scale=9.0))
            entry = JournalEntry(
                "orphan-1", "run", "",
                {"kind": "toy", "n": 32, "scale": 1.0},
            )
            assert service.journal.begin(entry)
            with pytest.raises(ServiceOverloaded):
                service.submit_run(
                    **_toy_payload(scale=1.0), _recover_entry=entry
                )
            assert "orphan-1" in [
                e.request_id for e in service.journal.pending()
            ], "overloaded recovery deleted the orphan from disk"
            service.resume()
            filler.result(30.0)
            # With the queue free again, a later recover() replays it.
            assert service.recover(_toy_resolver) == 1
            deadline = time.monotonic() + 30.0
            while (
                service.stats.completed + service.stats.warm_hits < 2
            ):
                assert time.monotonic() < deadline
                time.sleep(0.01)
        assert not RecoveryJournal(tmp_path / "journal").pending()

    def test_unresolvable_orphan_is_quarantined(self, tmp_path):
        journal_dir = tmp_path / "journal"
        journal = RecoveryJournal(journal_dir)
        journal.begin(JournalEntry("mystery-1", "run", "", {"kind": "???"}))
        journal.begin(JournalEntry("specless-1", "run", "", None))
        with _service(tmp_path) as service:
            assert service.recover(_toy_resolver) == 0
            assert service.stats.unrecoverable == 2
        assert not RecoveryJournal(journal_dir).pending()
        leftovers = sorted(p.name for p in journal_dir.glob("*.unrecoverable"))
        assert leftovers == [
            "mystery-1.journal.unrecoverable",
            "specless-1.journal.unrecoverable",
        ]

    def test_sigkill_mid_flight_loses_no_request(self, tmp_path):
        """A real SIGKILL: a child process admits and journals requests,
        is killed before the workers finish, and a fresh service on the
        same journal directory re-enqueues exactly the orphans."""
        journal_dir = tmp_path / "journal"
        child = textwrap.dedent(
            """
            import sys, time
            sys.path.insert(0, sys.argv[2])
            from tests.test_service import _service, _toy_payload  # noqa
            import pathlib
            tmp = pathlib.Path(sys.argv[1])
            service = _service(tmp, workers=1)
            service.pause()  # keep every request in-flight (journaled)
            for i in (1, 2, 3):
                service.submit_run(
                    **_toy_payload(scale=float(i)),
                    spec={"kind": "toy", "n": 32, "scale": float(i)},
                )
            print("READY", flush=True)
            service.resume()
            time.sleep(60)  # killed long before this returns
            """
        )
        env = dict(
            os.environ,
            PYTHONPATH=os.pathsep.join(
                [os.path.dirname(os.path.dirname(repro.__file__)),
                 os.environ.get("PYTHONPATH", "")]
            ),
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", child, str(tmp_path),
             os.path.dirname(os.path.dirname(os.path.abspath(__file__)))],
            stdout=subprocess.PIPE, env=env, text=True,
        )
        try:
            line = proc.stdout.readline()
            assert line.strip() == "READY"
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()

        orphans = RecoveryJournal(journal_dir).pending()
        assert orphans, "the kill left no journal entries to recover"
        with _service(tmp_path) as service:
            replayed = service.recover(_toy_resolver)
            assert replayed == len(orphans)
            deadline = time.monotonic() + 30.0
            while (
                service.stats.completed + service.stats.warm_hits < replayed
            ):
                assert time.monotonic() < deadline
                time.sleep(0.01)
        assert not RecoveryJournal(journal_dir).pending()
        # Zero lost requests: every orphan's result is bitwise-identical
        # to the solo path.
        cache = TuningCache(tmp_path / "cache")
        from repro.cache import fingerprint_inputs

        for entry in orphans:
            payload = _toy_payload(
                n=entry.spec["n"], scale=entry.spec["scale"]
            )
            base_out, base_counters = _toy_baseline(payload)
            kernel_key = cache.kernel_key(
                payload["program"], payload["options"], payload["size_env"]
            )
            run_key = cache.run_key(
                kernel_key, fingerprint_inputs(payload["inputs"]),
                payload["global_size"], payload["local_size"], None,
            )
            hit = cache.get_run(run_key)
            assert hit is not None
            assert hit[0].tobytes() == base_out.tobytes()
            assert hit[1] == base_counters


# ---------------------------------------------------------------------------
# the hammer soak (the acceptance gate, in miniature)
# ---------------------------------------------------------------------------

class TestHammer:
    def test_hammer_bitwise_under_chaos_plan(self, tmp_path):
        from repro.benchsuite.hammer import run_hammer

        with faultinject.plan_installed("seed=11;rate=0.05"):
            report = run_hammer(
                clients=8,
                requests_per_client=2,
                cache_dir=str(tmp_path / "cache"),
                journal_dir=str(tmp_path / "journal"),
                benchmarks=("nn", "gemv"),
            )
        assert report["ok"], report
        assert report["mismatches"] == []
        assert report["client_errors"] == []
        assert report["overload_rejected"]
        assert report["replayed"] >= 1
        assert report["coalesced"] >= 7
        assert report["orphans_after_drain"] == 0
