"""Tests for the pluggable execution-backend subsystem (repro.backend).

Covers the registry (registration, lookup, unknown-name errors, engine
chains), launch-time engine resolution (explicit argument vs the
``REPRO_SIM_ENGINE`` preference), and the fused whole-grid backend's
compilation decisions (fused segments, proof-carrying stores, prefix
masks, lane cap, aliasing) plus its fallback behaviour.  The bitwise
cross-backend contract itself is exercised by the engine sweeps in
``tests/test_simt.py`` / ``tests/test_simt_compile.py``.
"""

import numpy as np
import pytest

from repro.backend import (
    Backend,
    CompileUnsupported,
    backend_names,
    engine_names,
    get_backend,
    get_fused_kernel,
    register_backend,
    register_engine,
    resolve,
)
from repro.backend import fused as fused_mod
from repro.backend import registry as registry_mod
from repro.opencl import Buffer, OpenCLProgram, VectorizationError, launch

SAXPY = """
kernel void SAXPY(const global float * restrict x,
                  const global float * restrict y,
                  global float *out, float a, int n) {
  int i = get_global_id(0);
  if (i < n) { out[i] = a * x[i] + y[i]; }
}
"""


def saxpy_args(n, xs=None):
    x = Buffer.from_array(xs if xs is not None else np.arange(n, dtype=float))
    return {
        "x": x,
        "y": Buffer.from_array(np.ones(n)),
        "out": Buffer.zeros(n),
        "a": 2.0,
        "n": n,
    }


def run_saxpy(engine, n=64, local=16, **overrides):
    program = OpenCLProgram(SAXPY)
    args = saxpy_args(n)
    args.update(overrides)
    counters = launch(program, n, local, args, engine=engine)
    return args["out"].data.copy(), vars(counters)


class TestRegistry:
    def test_default_backends_registered(self):
        assert set(backend_names()) >= {"scalar", "interp", "compiled", "fused"}

    def test_default_engines_include_tier_aliases(self):
        names = set(engine_names())
        assert {"auto", "vector", "scalar", "interp", "compiled", "fused"} <= names

    def test_lookup_returns_the_backend(self):
        backend = get_backend("fused")
        assert backend.name == "fused"
        assert backend.dynamic_class == "grid"

    def test_unknown_backend_error_lists_names(self):
        with pytest.raises(ValueError) as err:
            get_backend("nope")
        for name in backend_names():
            assert name in str(err.value)

    def test_unknown_engine_error_lists_names(self):
        with pytest.raises(ValueError) as err:
            resolve("warp-speed")
        for name in engine_names():
            assert name in str(err.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_backend(get_backend("scalar"))

    def test_engine_chain_members_must_exist(self):
        with pytest.raises(ValueError):
            register_engine("broken-chain", ("no-such-backend",))

    def test_custom_backend_registration_roundtrip(self):
        class Null(Backend):
            name = "test-null"
            dynamic_class = "test"

            def plan(self, parsed, kernel):
                raise CompileUnsupported("always declines")

        try:
            register_backend(Null())
            register_engine("test-null-then-scalar", ("test-null", "scalar"))
            out, counters = run_saxpy("test-null-then-scalar")
            ref, ref_counters = run_saxpy("scalar")
            np.testing.assert_array_equal(out, ref)
            assert counters == ref_counters
        finally:
            registry_mod._BACKENDS.pop("test-null", None)
            registry_mod._ENGINES.pop("test-null-then-scalar", None)

    def test_strict_chain_raises_when_exhausted(self):
        src = """
        kernel void K(global float *x, int n) {
          if (get_global_id(0) >= n) { return; }
          barrier(CLK_LOCAL_MEM_FENCE);
          x[get_global_id(0)] = 1.0f;
        }
        """
        program = OpenCLProgram(src)
        with pytest.raises(VectorizationError):
            launch(program, 4, 4, {"x": Buffer.zeros(4), "n": 4},
                   engine="vector")


class TestEngineResolution:
    def test_launch_unknown_engine_lists_valid_names(self):
        program = OpenCLProgram(SAXPY)
        with pytest.raises(ValueError) as err:
            launch(program, 16, 16, saxpy_args(16), engine="warp-speed")
        message = str(err.value)
        for name in engine_names():
            assert name in message

    def test_env_var_accepts_backend_names(self, monkeypatch):
        ref, ref_counters = run_saxpy("scalar")
        for name in ("fused", "compiled", "interp"):
            monkeypatch.setenv("REPRO_SIM_ENGINE", name)
            out, counters = run_saxpy(None)
            np.testing.assert_array_equal(out, ref)
            assert counters == ref_counters

    def test_env_var_is_a_preference_not_a_requirement(self, monkeypatch):
        # A kernel only the scalar tier supports must still run when the
        # environment prefers a strict lane-batched engine.
        src = """
        kernel void K(global float *x, int n) {
          if (get_global_id(0) >= n) { return; }
          barrier(CLK_LOCAL_MEM_FENCE);
          x[get_global_id(0)] = 1.0f;
        }
        """
        program = OpenCLProgram(src)
        monkeypatch.setenv("REPRO_SIM_ENGINE", "compiled")
        out = Buffer.zeros(4)
        launch(program, 4, 4, {"x": out, "n": 4})
        np.testing.assert_array_equal(out.data, np.ones(4))

    def test_env_var_unknown_name_still_errors(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "warp-speed")
        program = OpenCLProgram(SAXPY)
        with pytest.raises(ValueError):
            launch(program, 16, 16, saxpy_args(16))


class TestFusedCompilation:
    def test_saxpy_fully_fuses_with_a_proven_store(self):
        program = OpenCLProgram(SAXPY)
        fk = get_fused_kernel(program.parsed, program.kernel())
        assert fk is not None
        assert fk.fused_segment_count == len(fk.segments) == 1
        assert fk.sole_names == frozenset({"out"})

    def test_barrier_kernel_splits_segments(self):
        src = """
        kernel void K(const global float * restrict x, global float *out) {
          local float tmp[8];
          int l = get_local_id(0);
          tmp[l] = x[get_global_id(0)];
          barrier(CLK_LOCAL_MEM_FENCE);
          out[get_global_id(0)] = tmp[l] + 1.0f;
        }
        """
        program = OpenCLProgram(src)
        fk = get_fused_kernel(program.parsed, program.kernel())
        assert fk is not None
        assert len(fk.segments) == 3  # stage | barrier | finish

    def test_unvectorizable_kernel_has_no_fused_form(self):
        # Statically refused (barrier + early return) but legal at this
        # launch shape: the fused chain must fall through to scalar.
        src = """
        kernel void K(global float *x, int n) {
          if (get_global_id(0) >= n) { return; }
          barrier(CLK_LOCAL_MEM_FENCE);
          x[get_global_id(0)] = 1.0f;
        }
        """
        program = OpenCLProgram(src)
        assert get_fused_kernel(program.parsed, program.kernel()) is None
        out_f = Buffer.zeros(4)
        c_f = launch(program, 4, 4, {"x": out_f, "n": 4}, engine="fused")
        out_s = Buffer.zeros(4)
        c_s = launch(program, 4, 4, {"x": out_s, "n": 4}, engine="scalar")
        np.testing.assert_array_equal(out_f.data, out_s.data)
        assert vars(c_f) == vars(c_s)

    def test_loaded_output_buffer_is_not_sole(self):
        src = """
        kernel void K(global float *out) {
          int i = get_global_id(0);
          out[i] = out[i] + 1.0f;
        }
        """
        program = OpenCLProgram(src)
        fk = get_fused_kernel(program.parsed, program.kernel())
        assert fk is not None
        assert "out" not in fk.sole_names

    def test_store_inside_a_loop_is_not_sole(self):
        src = """
        kernel void K(global float *out, int n) {
          int i = get_global_id(0);
          for (int t = 0; t < 2; t = t + 1) {
            out[i + t * n] = 1.0f;
          }
        }
        """
        program = OpenCLProgram(src)
        fk = get_fused_kernel(program.parsed, program.kernel())
        assert fk is not None
        assert "out" not in fk.sole_names

    def test_prefix_guard_matches_scalar_bitwise(self):
        # Guard bound below the launch size: the fused backend runs the
        # body on a lane prefix; buffers and counters must match scalar.
        program = OpenCLProgram(SAXPY)
        n, glob = 100, 128
        for engine in ("scalar", "fused"):
            args = saxpy_args(glob)
            args["n"] = n
            counters = launch(program, glob, 4, args, engine=engine)
            if engine == "scalar":
                ref = args["out"].data.copy()
                ref_counters = vars(counters)
            else:
                np.testing.assert_array_equal(args["out"].data, ref)
                assert vars(counters) == ref_counters
        assert ref_counters["global_stores"] == n
        assert np.count_nonzero(ref) == n  # items past the guard skipped

    def test_aliased_output_still_bitwise(self):
        # The same array passed as input and output disables the
        # proof-carrying store (aliasing check) without losing bitwise
        # equality with the scalar engine.
        src = """
        kernel void K(const global float * restrict x, global float *out) {
          int i = get_global_id(0);
          out[i] = x[i] + 1.0f;
        }
        """
        program = OpenCLProgram(src)
        shared_f = Buffer.from_array(np.arange(8, dtype=float))
        c_f = launch(program, 8, 4, {"x": shared_f, "out": shared_f},
                     engine="fused")
        shared_s = Buffer.from_array(np.arange(8, dtype=float))
        c_s = launch(program, 8, 4, {"x": shared_s, "out": shared_s},
                     engine="scalar")
        np.testing.assert_array_equal(shared_f.data, shared_s.data)
        assert vars(c_f) == vars(c_s)

    def test_lane_cap_falls_back_to_compiled(self, monkeypatch):
        monkeypatch.setattr(fused_mod, "FUSED_MAX_LANES", 32)
        out, counters = run_saxpy("fused", n=64, local=16)
        ref, ref_counters = run_saxpy("scalar", n=64, local=16)
        np.testing.assert_array_equal(out, ref)
        assert counters == ref_counters

    def test_grid_uniform_loop_fuses(self):
        src = """
        kernel void K(const global float * restrict x, global float *out,
                      int reps) {
          int i = get_global_id(0);
          float acc = 0.0f;
          for (int t = 0; t < reps; t = t + 1) {
            acc = acc + x[i];
          }
          out[i] = acc;
        }
        """
        program = OpenCLProgram(src)
        fk = get_fused_kernel(program.parsed, program.kernel())
        assert fk is not None and fk.fused_segment_count == 1
        for engine in ("scalar", "fused"):
            args = {
                "x": Buffer.from_array(np.arange(16, dtype=float)),
                "out": Buffer.zeros(16),
                "reps": 3,
            }
            counters = launch(program, 16, 4, args, engine=engine)
            if engine == "scalar":
                ref = args["out"].data.copy()
                ref_counters = vars(counters)
            else:
                np.testing.assert_array_equal(args["out"].data, ref)
                assert vars(counters) == ref_counters
        assert ref_counters["loop_iterations"] == 3 * 16
