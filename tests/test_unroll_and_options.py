"""Tests for the unrolled patterns and compiler options."""

import numpy as np
import pytest

from repro.arith import Var
from repro.types import ArrayType, FLOAT
from repro.ir.nodes import FunCall, Lambda, Param
from repro.ir.dsl import (
    add,
    compose,
    f32,
    get,
    id_fun,
    join,
    lam2,
    map_glb,
    map_seq_unroll,
    map_wrg,
    map_lcl,
    map_seq,
    mult_and_sum_up,
    reduce_seq,
    reduce_seq_unroll,
    split,
    to_global,
    to_local,
    zip_,
)
from repro.ir.interp import apply_fun
from repro.compiler import CompilerOptions, compile_kernel
from repro.compiler.codegen import CodeGenError
from repro.compiler.kernel import compile_and_run


class TestUnrolledPatterns:
    def test_reduce_unroll_emits_no_loop(self):
        x = Param(ArrayType(FLOAT, 4), "x")
        prog = Lambda(
            [x], map_glb(id_fun())(reduce_seq_unroll(add(), f32(0.0))(x))
        )
        # reduce over a 4-element array inside a 1-trip map
        src = compile_kernel(
            prog, CompilerOptions(local_size=(1, 1, 1), global_size=(1, 1, 1))
        ).source
        assert src.count("= add(") == 4  # four straight-line accumulations

    def test_unrolled_reduce_correct(self):
        n = 32
        x = Param(ArrayType(FLOAT, n), "x")
        body = compose(
            join(),
            map_glb(reduce_seq_unroll(add(), f32(0.0))),
            split(4),
        )(x)
        prog = Lambda([x], body)
        data = np.arange(n, dtype=float)
        result = compile_and_run(
            prog, {"x": data}, {}, global_size=n // 4,
            options=CompilerOptions(local_size=(4, 1, 1)),
        )
        np.testing.assert_allclose(result.output, data.reshape(-1, 4).sum(axis=1))

    def test_unrolled_map_correct(self):
        n = 16
        x = Param(ArrayType(FLOAT, n), "x")
        body = compose(
            join(), map_glb(map_seq_unroll(id_fun())), split(4)
        )(x)
        prog = Lambda([x], body)
        data = np.arange(n, dtype=float)
        result = compile_and_run(
            prog, {"x": data}, {}, global_size=n // 4,
            options=CompilerOptions(local_size=(4, 1, 1)),
        )
        np.testing.assert_allclose(result.output, data)

    def test_unroll_requires_concrete_length(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        prog = Lambda(
            [x], map_glb(id_fun())(reduce_seq_unroll(add(), f32(0.0))(x))
        )
        with pytest.raises(CodeGenError):
            compile_kernel(prog)

    def test_interp_semantics_match_looped(self):
        x = Param(ArrayType(FLOAT, 8), "x")
        looped = Lambda([x], reduce_seq(add(), f32(0.0))(x))
        y = Param(ArrayType(FLOAT, 8), "y")
        unrolled = Lambda([y], reduce_seq_unroll(add(), f32(0.0))(y))
        data = [float(i) for i in range(8)]
        assert apply_fun(looped, [data]) == apply_fun(unrolled, [data])


class TestCompilerOptions:
    def test_levels_differ(self):
        none = CompilerOptions.none()
        full = CompilerOptions.all()
        assert not none.array_access_simplification
        assert full.array_access_simplification
        assert not none.control_flow_simplification
        assert not none.barrier_elimination

    def test_with_override(self):
        opts = CompilerOptions().with_(local_size=(32, 1, 1))
        assert opts.local_size == (32, 1, 1)
        assert opts.array_access_simplification

    def test_options_are_frozen(self):
        opts = CompilerOptions()
        with pytest.raises(Exception):
            opts.local_size = (1, 1, 1)  # type: ignore[misc]

    def test_barrier_counts_respond_to_elimination(self):
        """Barrier elimination removes barriers from an elementwise
        mapLcl chain."""
        x = Param(ArrayType(FLOAT, 64), "x")
        body = compose(
            join(),
            map_wrg(
                compose(
                    to_global(map_lcl(id_fun())),
                    to_local(map_lcl(id_fun())),
                )
            ),
            split(16),
        )(x)

        def build():
            import repro.ir.visit as visit

            return Lambda([x], visit.clone_expr(body, {x: x}))

        with_elim = compile_kernel(
            build(), CompilerOptions(local_size=(16, 1, 1))
        ).source
        without = compile_kernel(
            build(), CompilerOptions(local_size=(16, 1, 1),
                                     barrier_elimination=False)
        ).source
        assert with_elim.count("barrier(") < without.count("barrier(")

    def test_cf_simplification_removes_loops(self):
        from tests.programs import partial_dot

        with_cf = compile_kernel(
            partial_dot(), CompilerOptions(local_size=(64, 1, 1))
        ).source
        without = compile_kernel(
            partial_dot(),
            CompilerOptions(local_size=(64, 1, 1),
                            control_flow_simplification=False),
        ).source
        assert with_cf.count("for (") < without.count("for (")
