"""Tests for OpenCL code generation: structure and, crucially, semantics.

The differential-testing contract: for every program, the generated
kernel executed on the simulated device must agree with the IR reference
interpreter and with a NumPy oracle — at every optimization level.
"""

import numpy as np
import pytest

from repro.arith import Var
from repro.types import ArrayType, FLOAT, array
from repro.ir.nodes import FunCall, Lambda, Param, UserFun
from repro.ir.dsl import (
    add,
    compose,
    f32,
    gather,
    get,
    id_fun,
    join,
    lam,
    lam2,
    make_tuple,
    map_glb,
    map_lcl,
    map_seq,
    map_wrg,
    mult,
    reduce_seq,
    scatter,
    slide,
    split,
    to_global,
    to_local,
    transpose,
    zip_,
)
from repro.ir.patterns import transpose_indices
from repro.compiler.codegen import CodeGenError, compile_kernel
from repro.compiler.kernel import compile_and_run
from repro.compiler.options import CompilerOptions

from tests.programs import partial_dot, simple_map_add_one

ALL_LEVELS = [
    CompilerOptions.none,
    CompilerOptions.barrier_cf,
    CompilerOptions.all,
]


class TestKernelStructure:
    def test_simple_map_source(self):
        k = compile_kernel(simple_map_add_one())
        assert "kernel void KERNEL" in k.source
        assert "get_global_id(0)" in k.source
        assert "plusOne" in k.source

    def test_dot_product_matches_figure7_structure(self):
        k = compile_kernel(partial_dot(), CompilerOptions(local_size=(64, 1, 1)))
        src = k.source
        # work-group loop with stride (Figure 7 line 7)
        assert "get_group_id(0)" in src and "get_num_groups(0)" in src
        # double buffering with pointer swap (lines 17-28)
        assert "local float *" in src
        # control-flow simplified guard (lines 20, 30)
        assert "if (" in src
        # barriers present (lines 16, 25, 29)
        assert src.count("barrier(") >= 3
        # simplified global access of section 5.3
        assert "128 * wg_id" in src

    def test_layout_patterns_emit_no_code(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        prog = Lambda([x], compose(join(), map_glb(map_seq(id_fun())), split(4))(x))
        k = compile_kernel(prog)
        assert "split" not in k.source and "join" not in k.source

    def test_unoptimized_kernel_has_no_if_simplification(self):
        k_all = compile_kernel(partial_dot(), CompilerOptions(local_size=(64, 1, 1)))
        k_none = compile_kernel(
            partial_dot(), CompilerOptions.none(local_size=(64, 1, 1))
        )
        # without CF simplification every map is a loop
        assert k_none.source.count("for (") > k_all.source.count("for (")
        # without barrier elimination at least as many barriers
        assert k_none.source.count("barrier(") >= k_all.source.count("barrier(")

    def test_high_level_patterns_rejected(self):
        from repro.ir.dsl import map_

        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        prog = Lambda([x], map_(id_fun())(x))
        with pytest.raises(CodeGenError):
            compile_kernel(prog)

    def test_pure_view_program_rejected(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        prog = Lambda([x], compose(join(), split(4))(x))
        with pytest.raises(CodeGenError):
            compile_kernel(prog)


@pytest.mark.parametrize("level", ALL_LEVELS, ids=["none", "barrier_cf", "all"])
class TestSemanticsAtEveryLevel:
    """Generated code must be correct with and without optimizations."""

    def test_map_glb(self, level):
        n = 64
        prog = simple_map_add_one()
        x = np.arange(n, dtype=float)
        result = compile_and_run(
            prog, {"x": x}, {"N": n}, global_size=n,
            options=level(local_size=(16, 1, 1)),
        )
        np.testing.assert_allclose(result.output, x + 1)

    def test_partial_dot_listing1(self, level):
        n = 512
        rng = np.random.default_rng(42)
        x = rng.random(n)
        y = rng.random(n)
        result = compile_and_run(
            partial_dot(), {"x": x, "y": y}, {"N": n},
            global_size=128, options=level(local_size=(64, 1, 1)),
        )
        expected = (x * y).reshape(-1, 128).sum(axis=1)
        np.testing.assert_allclose(result.output, expected, rtol=1e-12)

    def test_zip_mult(self, level):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        y = Param(ArrayType(FLOAT, n), "y")
        m = mult()
        body = map_glb(lam(lambda xy: FunCall(m, [get(xy, 0), get(xy, 1)])))(
            zip_(x, y)
        )
        prog = Lambda([x, y], body)
        xs = np.arange(32, dtype=float)
        ys = np.arange(32, dtype=float) + 1
        result = compile_and_run(
            prog, {"x": xs, "y": ys}, {"N": 32}, global_size=32,
            options=level(local_size=(8, 1, 1)),
        )
        np.testing.assert_allclose(result.output, xs * ys)

    def test_gather_transpose_composition(self, level):
        """The paper's matrix transposition (section 5.3)."""
        rows, cols = 8, 16
        x = Param(array(FLOAT, rows, cols), "x")
        body = compose(
            map_wrg(map_lcl(id_fun())),
            split(cols),
            gather(transpose_indices(rows, cols)),
            join(),
        )(x)
        prog = Lambda([x], body)
        data = np.arange(rows * cols, dtype=float).reshape(rows, cols)
        result = compile_and_run(
            prog, {"x": data}, {}, global_size=rows * 8,
            options=level(local_size=(8, 1, 1)),
        )
        np.testing.assert_allclose(result.output.reshape(cols, rows), data.T)

    def test_transpose_pattern(self, level):
        rows, cols = 4, 8
        x = Param(array(FLOAT, rows, cols), "x")
        body = compose(
            join(), map_wrg(map_lcl(id_fun())), transpose()
        )(x)
        prog = Lambda([x], body)
        data = np.arange(rows * cols, dtype=float).reshape(rows, cols)
        result = compile_and_run(
            prog, {"x": data}, {}, global_size=cols * 4,
            options=level(local_size=(4, 1, 1)),
        )
        np.testing.assert_allclose(result.output.reshape(cols, rows), data.T)

    def test_scatter_write_reorder(self, level):
        n = 16
        x = Param(ArrayType(FLOAT, n), "x")
        from repro.ir.patterns import reverse_indices

        body = scatter(reverse_indices())(map_glb(id_fun())(x))
        prog = Lambda([x], body)
        data = np.arange(n, dtype=float)
        result = compile_and_run(
            prog, {"x": data}, {}, global_size=n,
            options=level(local_size=(4, 1, 1)),
        )
        np.testing.assert_allclose(result.output, data[::-1])

    def test_slide_stencil(self, level):
        """mapGlb(reduceSeq(add, 0)) o slide(3, 1): 3-point stencil."""
        n = 18
        x = Param(ArrayType(FLOAT, n), "x")
        body = compose(
            join(),
            map_glb(reduce_seq(add(), f32(0.0))),
            slide(3, 1),
        )(x)
        prog = Lambda([x], body)
        data = np.arange(n, dtype=float)
        result = compile_and_run(
            prog, {"x": data}, {}, global_size=16,
            options=level(local_size=(4, 1, 1)),
        )
        expected = data[:-2] + data[1:-1] + data[2:]
        np.testing.assert_allclose(result.output, expected)

    def test_local_memory_staging(self, level):
        """toLocal copy then compute, work-group wise."""
        n = 64
        x = Param(ArrayType(FLOAT, n), "x")
        plus_one = UserFun(
            "plusOne", ["v"], "return v + 1.0f;", [FLOAT], FLOAT,
            py=lambda v: v + 1.0,
        )
        work_group = compose(
            to_global(map_lcl(plus_one)),
            to_local(map_lcl(id_fun())),
        )
        body = compose(join(), map_wrg(work_group), split(16))(x)
        prog = Lambda([x], body)
        data = np.arange(n, dtype=float)
        result = compile_and_run(
            prog, {"x": data}, {}, global_size=n,
            options=level(local_size=(16, 1, 1)),
        )
        np.testing.assert_allclose(result.output, data + 1)

    def test_tuple_accumulator_reduction(self, level):
        """argmin via a (value, index) tuple accumulator — K-Means style."""
        from repro.types import INT, TupleType

        n = 16
        x = Param(ArrayType(FLOAT, n), "x")
        acc_t = TupleType([FLOAT, FLOAT])
        take_min = UserFun(
            "takeMin",
            ["acc", "v"],
            "if (v < acc._0) { acc._0 = v; } acc._1 = acc._1 + 1.0f; return acc;",
            [acc_t, FLOAT],
            acc_t,
        )
        body = compose(
            join(),
            map_glb(
                lam(
                    lambda chunk: FunCall(
                        map_seq(
                            UserFun(
                                "fst", ["t"], "return t._0;", [acc_t], FLOAT,
                                py=lambda t: t[0],
                            )
                        ),
                        [
                            FunCall(
                                __import__("repro.ir.patterns", fromlist=["ReduceSeq"]).ReduceSeq(take_min),
                                [make_tuple(f32(1e30), f32(0.0)), chunk],
                            )
                        ],
                    )
                )
            ),
            split(4),
        )(x)
        prog = Lambda([x], body)
        data = np.asarray(
            [4.0, 2.0, 7.0, 5.0, 1.0, 9.0, 0.5, 3.0, 8.0, 8.5, 2.5, 6.0,
             11.0, 10.0, 12.0, 9.5]
        )
        result = compile_and_run(
            prog, {"x": data}, {}, global_size=4,
            options=level(local_size=(2, 1, 1)),
        )
        expected = data.reshape(-1, 4).min(axis=1)
        np.testing.assert_allclose(result.output, expected)

    def test_counters_change_with_optimization(self, level):
        """Unoptimized kernels execute more int div/mod operations."""
        n = 512
        x = np.ones(n)
        y = np.ones(n)
        result = compile_and_run(
            partial_dot(), {"x": x, "y": y}, {"N": n},
            global_size=128, options=level(local_size=(64, 1, 1)),
        )
        assert result.counters.work_items == 128


class TestVectorization:
    def test_vectorized_map(self):
        from repro.ir.dsl import as_scalar, as_vector

        n = 32
        x = Param(ArrayType(FLOAT, n), "x")
        scale4 = UserFun(
            "scale4", ["v"], "return v * 2.0f;",
            [array and __import__("repro.types", fromlist=["VectorType"]).VectorType(FLOAT, 4)],
            __import__("repro.types", fromlist=["VectorType"]).VectorType(FLOAT, 4),
        )
        body = compose(
            as_scalar(),
            map_glb(scale4),
            as_vector(4),
        )(x)
        prog = Lambda([x], body)
        data = np.arange(n, dtype=float)
        result = compile_and_run(
            prog, {"x": data}, {}, global_size=8,
            options=CompilerOptions(local_size=(4, 1, 1)),
        )
        np.testing.assert_allclose(result.output, data * 2)

    def test_vload_in_source(self):
        from repro.ir.dsl import as_scalar, as_vector
        from repro.types import VectorType

        n = 32
        x = Param(ArrayType(FLOAT, n), "x")
        scale4 = UserFun(
            "scale4", ["v"], "return v * 2.0f;",
            [VectorType(FLOAT, 4)], VectorType(FLOAT, 4),
        )
        prog = Lambda([x], compose(as_scalar(), map_glb(scale4), as_vector(4))(x))
        k = compile_kernel(prog)
        assert "vload4" in k.source and "vstore4" in k.source
