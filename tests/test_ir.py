"""Tests for IR nodes, type inference and the reference interpreter."""

import pytest

from repro.arith import Cst, Var, simplify
from repro.types import ArrayType, FLOAT, INT, TupleType, VectorType, array
from repro.ir.nodes import FunCall, Lambda, Literal, Param, UserFun
from repro.ir.typecheck import infer_types
from repro.ir.patterns import (
    Iterate,
    LiftTypeError,
    reverse_indices,
    shift_indices,
    transpose_indices,
)
from repro.ir.dsl import (
    add,
    as_scalar,
    as_vector,
    compose,
    f32,
    gather,
    get,
    id_fun,
    join,
    lam,
    make_tuple,
    map_seq,
    mult,
    pad,
    pipe,
    reduce_seq,
    scatter,
    slide,
    split,
    transpose,
    zip_,
)
from repro.ir.interp import VecValue, apply_fun, evaluate
from repro.ir.visit import clone_decl, clone_expr, count_nodes, post_order

from tests.programs import partial_dot, simple_map_add_one


def typed_param(t, name=None):
    return Param(t, name)


class TestNodes:
    def test_call_arity_check(self):
        f = add()
        with pytest.raises(TypeError):
            f(Param())

    def test_userfun_rejects_arrays(self):
        with pytest.raises(TypeError):
            UserFun("bad", ["a"], "return a;", [ArrayType(FLOAT, 4)], FLOAT)

    def test_param_names_unique(self):
        assert Param().name != Param().name


class TestTypeInference:
    def test_map_seq(self):
        n = Var("N")
        x = typed_param(ArrayType(FLOAT, n))
        e = map_seq(id_fun())(x)
        assert infer_types(e) == ArrayType(FLOAT, n)

    def test_split_join_roundtrip_type(self):
        n = Var("N")
        x = typed_param(ArrayType(FLOAT, n))
        e = pipe(x, split(8), join())
        assert infer_types(e) == ArrayType(FLOAT, n)

    def test_zip_type(self):
        n = Var("N")
        x = typed_param(ArrayType(FLOAT, n))
        y = typed_param(ArrayType(FLOAT, n))
        e = zip_(x, y)
        assert infer_types(e) == ArrayType(TupleType([FLOAT, FLOAT]), n)

    def test_zip_length_mismatch(self):
        x = typed_param(ArrayType(FLOAT, 4))
        y = typed_param(ArrayType(FLOAT, 8))
        with pytest.raises(LiftTypeError):
            infer_types(zip_(x, y))

    def test_reduce_type(self):
        x = typed_param(ArrayType(FLOAT, 16))
        e = reduce_seq(add(), f32(0.0))(x)
        assert infer_types(e) == ArrayType(FLOAT, Cst(1))

    def test_reduce_accumulator_mismatch(self):
        x = typed_param(ArrayType(FLOAT, 16))
        bad = UserFun("toInt", ["a", "b"], "return 1;", [FLOAT, FLOAT], INT)
        with pytest.raises(LiftTypeError):
            infer_types(reduce_seq(bad, f32(0.0))(x))

    def test_transpose_type(self):
        x = typed_param(array(FLOAT, 4, 8))
        assert infer_types(transpose()(x)) == array(FLOAT, 8, 4)

    def test_slide_type(self):
        n = Var("N")
        x = typed_param(ArrayType(FLOAT, n))
        out = infer_types(slide(3, 1)(x))
        assert out == ArrayType(ArrayType(FLOAT, 3), simplify(n - 2))

    def test_pad_type(self):
        x = typed_param(ArrayType(FLOAT, 8))
        assert infer_types(pad(1, 1)(x)) == ArrayType(FLOAT, 10)

    def test_vectorize_types(self):
        x = typed_param(ArrayType(FLOAT, 64))
        e = pipe(x, as_vector(4))
        assert infer_types(e) == ArrayType(VectorType(FLOAT, 4), 16)
        e2 = pipe(x, as_vector(4), as_scalar())
        assert infer_types(e2) == ArrayType(FLOAT, 64)

    def test_iterate_halving_closed_form(self):
        x = typed_param(ArrayType(FLOAT, 64))
        halve = compose(join(), map_seq(reduce_seq(add(), f32(0.0))), split(2))
        e = Iterate(6, halve)(x)
        assert infer_types(e) == ArrayType(FLOAT, Cst(1))

    def test_iterate_identity_closed_form(self):
        n = Var("N")
        x = typed_param(ArrayType(FLOAT, n))
        e = Iterate(10, map_seq(id_fun()))(x)
        assert infer_types(e) == ArrayType(FLOAT, n)

    def test_get_type(self):
        x = typed_param(TupleType([FLOAT, INT]))
        assert infer_types(get(x, 1)) == INT
        with pytest.raises(LiftTypeError):
            infer_types(get(x, 2))

    def test_make_tuple(self):
        a = typed_param(FLOAT)
        b = typed_param(INT)
        assert infer_types(make_tuple(a, b)) == TupleType([FLOAT, INT])

    def test_untyped_param_rejected(self):
        with pytest.raises(LiftTypeError):
            infer_types(map_seq(id_fun())(Param()))

    def test_listing1_partial_dot_types(self):
        prog = partial_dot()
        n = Var("N")
        out = infer_types(prog.body)
        assert out == ArrayType(FLOAT, simplify(n // 128))


class TestInterp:
    def test_map_seq(self):
        x = typed_param(ArrayType(FLOAT, 4))
        e = map_seq(id_fun())(x)
        assert evaluate(e, {x: [1.0, 2.0, 3.0, 4.0]}) == [1.0, 2.0, 3.0, 4.0]

    def test_reduce(self):
        x = typed_param(ArrayType(FLOAT, 4))
        e = reduce_seq(add(), f32(0.0))(x)
        assert evaluate(e, {x: [1.0, 2.0, 3.0, 4.0]}) == [10.0]

    def test_split_join(self):
        x = typed_param(ArrayType(FLOAT, 6))
        e = pipe(x, split(2), join())
        data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        assert evaluate(e, {x: data}) == data

    def test_split_shape(self):
        x = typed_param(ArrayType(FLOAT, 6))
        e = pipe(x, split(3))
        assert evaluate(e, {x: [1, 2, 3, 4, 5, 6]}) == [[1, 2, 3], [4, 5, 6]]

    def test_gather_reverse(self):
        x = typed_param(ArrayType(FLOAT, 4))
        e = gather(reverse_indices())(x)
        assert evaluate(e, {x: [1, 2, 3, 4]}) == [4, 3, 2, 1]

    def test_scatter_is_inverse_of_gather_for_shift(self):
        x = typed_param(ArrayType(FLOAT, 5))
        data = [1, 2, 3, 4, 5]
        shifted = apply_fun(gather(shift_indices(2)).__class__ and gather(shift_indices(2)), [data])
        unshifted = apply_fun(scatter(shift_indices(2)), [shifted])
        assert unshifted == data

    def test_transpose(self):
        x = typed_param(array(FLOAT, 2, 3))
        e = transpose()(x)
        assert evaluate(e, {x: [[1, 2, 3], [4, 5, 6]]}) == [[1, 4], [2, 5], [3, 6]]

    def test_transpose_via_gather_matches_pattern(self):
        rows, cols = 3, 4
        data = [[r * cols + c for c in range(cols)] for r in range(rows)]
        direct = apply_fun(transpose(), [data])
        composed = apply_fun(
            compose(split(rows), gather(transpose_indices(rows, cols)), join()),
            [data],
        )
        assert composed == direct

    def test_slide_windows(self):
        x = typed_param(ArrayType(FLOAT, 5))
        e = slide(3, 1)(x)
        assert evaluate(e, {x: [1, 2, 3, 4, 5]}) == [[1, 2, 3], [2, 3, 4], [3, 4, 5]]

    def test_pad_clamps(self):
        x = typed_param(ArrayType(FLOAT, 3))
        e = pad(2, 1)(x)
        assert evaluate(e, {x: [7, 8, 9]}) == [7, 7, 7, 8, 9, 9]

    def test_vector_roundtrip(self):
        x = typed_param(ArrayType(FLOAT, 8))
        data = [float(i) for i in range(8)]
        e = pipe(x, as_vector(4), as_scalar())
        assert evaluate(e, {x: data}) == data

    def test_vectorized_userfun(self):
        f = mult().vectorized(4)
        a = VecValue([1.0, 2.0, 3.0, 4.0])
        b = VecValue([5.0, 6.0, 7.0, 8.0])
        assert f.py(a, b) == VecValue([5.0, 12.0, 21.0, 32.0])

    def test_listing1_partial_dot_semantics(self):
        prog = partial_dot()
        n = 256
        xs = [float(i % 7) for i in range(n)]
        ys = [float((i * 3) % 5) for i in range(n)]
        result = apply_fun(prog, [xs, ys], size_env={"N": n})
        expected = [
            sum(x * y for x, y in zip(xs[i : i + 128], ys[i : i + 128]))
            for i in range(0, n, 128)
        ]
        assert len(result) == 2
        for got, want in zip(result, expected):
            assert got == pytest.approx(want)

    def test_iterate_runs_n_times(self):
        x = typed_param(ArrayType(FLOAT, 64))
        halve = compose(join(), map_seq(reduce_seq(add(), f32(0.0))), split(2))
        e = Iterate(6, halve)(x)
        data = [1.0] * 64
        assert evaluate(e, {x: data}) == [64.0]


class TestVisit:
    def test_post_order_covers_args(self):
        prog = simple_map_add_one()
        nodes = list(post_order(prog.body))
        assert prog.body in nodes
        assert prog.params[0] in nodes

    def test_clone_is_deep(self):
        prog = partial_dot()
        copy = clone_decl(prog)
        original = set(id(e) for e in post_order(prog.body))
        cloned = set(id(e) for e in post_order(copy.body))
        assert not (original & cloned)

    def test_clone_preserves_semantics(self):
        prog = partial_dot()
        copy = clone_decl(prog)
        xs = [1.0] * 128
        ys = [2.0] * 128
        assert apply_fun(copy, [xs, ys], {"N": 128}) == apply_fun(
            prog, [xs, ys], {"N": 128}
        )

    def test_count_nodes(self):
        prog = simple_map_add_one()
        assert count_nodes(prog.body) > 1

    def test_clone_expr_param_substitution(self):
        x = typed_param(ArrayType(FLOAT, 4), "x")
        y = typed_param(ArrayType(FLOAT, 4), "y")
        e = map_seq(id_fun())(x)
        swapped = clone_expr(e, {x: y})
        assert evaluate(swapped, {y: [9.0] * 4}) == [9.0] * 4
