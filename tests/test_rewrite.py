"""Tests for the rewrite system: every rule preserves semantics."""

import numpy as np
import pytest

from repro.arith import Var
from repro.types import ArrayType, FLOAT
from repro.ir.nodes import FunCall, Lambda, Param, UserFun
from repro.ir.dsl import (
    add,
    compose,
    f32,
    id_fun,
    join,
    map_,
    map_seq,
    pipe,
    reduce_,
    split,
    transpose,
    zip_,
)
from repro.ir import patterns as pat
from repro.ir.interp import apply_fun, evaluate
from repro.compiler.kernel import compile_and_run
from repro.rewrite import (
    apply_at,
    apply_everywhere,
    exhaustively,
    find_matches,
    rewrite_first,
)
from repro.rewrite.rules import (
    join_split_cancel,
    map_fusion,
    map_reduce_fusion,
    map_to_glb,
    map_to_seq,
    reduce_to_seq,
    scalar_vector_cancel,
    split_join,
    transpose_transpose_cancel,
    vectorize_map,
)
from repro.rewrite.lowering import lower_to_global, lower_to_work_groups


def plus_one():
    return UserFun("plusOne", ["v"], "return v + 1.0f;", [FLOAT], FLOAT,
                   py=lambda v: v + 1.0)


def times_two():
    return UserFun("timesTwo", ["v"], "return v * 2.0f;", [FLOAT], FLOAT,
                   py=lambda v: v * 2.0)


def high_level_program():
    n = Var("N")
    x = Param(ArrayType(FLOAT, n), "x")
    return Lambda([x], map_(plus_one())(x))


DATA = [float(i) for i in range(16)]


def results_equal(fun_a, fun_b, args=None, size_env=None):
    args = args if args is not None else [list(DATA)]
    size_env = size_env or {"N": len(DATA)}
    return apply_fun(fun_a, args, size_env) == apply_fun(fun_b, args, size_env)


class TestLoweringRules:
    def test_map_to_seq(self):
        prog = high_level_program()
        lowered = rewrite_first(map_to_seq(), prog.body)
        assert lowered is not None
        assert isinstance(lowered.f, pat.MapSeq)
        assert evaluate(lowered, {prog.params[0]: DATA}) == [v + 1 for v in DATA]

    def test_map_to_glb(self):
        prog = high_level_program()
        lowered = rewrite_first(map_to_glb(0), prog.body)
        assert isinstance(lowered.f, pat.MapGlb)

    def test_reduce_to_seq(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        prog = Lambda([x], reduce_(add(), f32(0.0))(x))
        lowered = rewrite_first(reduce_to_seq(), prog.body)
        assert lowered is not None
        assert len(find_matches(reduce_to_seq(), lowered)) == 0
        assert evaluate(lowered, {x: DATA}) == [sum(DATA)]

    def test_no_match_returns_none(self):
        prog = high_level_program()
        lowered = rewrite_first(map_to_seq(), prog.body)
        assert rewrite_first(map_to_seq(), lowered) is None


class TestAlgorithmicRules:
    def test_split_join_preserves_semantics(self):
        prog = high_level_program()
        tiled = rewrite_first(split_join(4), prog.body)
        assert tiled is not None
        original = evaluate(prog.body, {prog.params[0]: DATA}, {"N": 16})
        rewritten = evaluate(tiled, {prog.params[0]: DATA}, {"N": 16})
        assert original == rewritten

    def test_map_fusion(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        body = map_(plus_one())(map_(times_two())(x))
        fused = rewrite_first(map_fusion(), body)
        assert fused is not None
        assert len(find_matches(map_fusion(), fused)) == 0
        assert evaluate(fused, {x: DATA}) == [v * 2 + 1 for v in DATA]

    def test_map_reduce_fusion(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        body = FunCall(
            pat.ReduceSeq(add()), [f32(0.0), map_seq(times_two())(x)]
        )
        fused = rewrite_first(map_reduce_fusion(), body)
        assert fused is not None
        assert evaluate(fused, {x: DATA}) == [sum(v * 2 for v in DATA)]

    def test_vectorize_map(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        body = map_(times_two())(x)
        vectorized = rewrite_first(vectorize_map(4), body)
        assert vectorized is not None
        assert isinstance(vectorized.f, pat.AsScalar)
        assert evaluate(vectorized, {x: DATA}) == [v * 2 for v in DATA]


class TestSimplificationRules:
    def test_join_split_cancel(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        body = pipe(x, split(4), join())
        cancelled = rewrite_first(join_split_cancel(), body)
        assert cancelled is x

    def test_transpose_cancel(self):
        from repro.types import array

        x = Param(array(FLOAT, 4, 4), "x")
        body = transpose()(transpose()(x))
        assert rewrite_first(transpose_transpose_cancel(), body) is x

    def test_exhaustive_simplification(self):
        from repro.rewrite.rules import simplification_rules

        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        body = pipe(x, split(4), join(), split(8), join())
        simplified = exhaustively(simplification_rules(), body)
        assert simplified is x


class TestStrategies:
    def test_find_matches_counts(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        body = map_(plus_one())(map_(times_two())(x))
        assert len(find_matches(map_to_seq(), body)) == 2

    def test_apply_at_position(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        body = map_(plus_one())(map_(times_two())(x))
        first = apply_at(map_to_seq(), body, 0)
        both = apply_everywhere(map_to_seq(), body)
        assert len(find_matches(map_to_seq(), first)) == 1
        assert len(find_matches(map_to_seq(), both)) == 0

    def test_apply_at_out_of_range(self):
        prog = high_level_program()
        with pytest.raises(ValueError):
            apply_at(map_to_seq(), prog.body, 5)

    def test_explore_enumerates_variants(self):
        from repro.rewrite.strategies import explore
        from repro.rewrite.rules import lowering_rules

        prog = high_level_program()
        variants = explore(lowering_rules(), prog.body, depth=1)
        # identity + the four map lowerings
        assert len(variants) == 5


class TestLoweringRecipes:
    def test_lower_to_global_compiles_and_runs(self):
        from repro.compiler.options import CompilerOptions

        prog = high_level_program()
        lowered = lower_to_global(prog)
        data = np.arange(32, dtype=float)
        result = compile_and_run(
            lowered, {"x": data}, {"N": 32}, global_size=32,
            options=CompilerOptions(local_size=(8, 1, 1)),
        )
        np.testing.assert_allclose(result.output, data + 1)

    def test_lower_to_work_groups_compiles_and_runs(self):
        from repro.compiler.options import CompilerOptions

        prog = high_level_program()
        lowered = lower_to_work_groups(prog, chunk=16)
        data = np.arange(64, dtype=float)
        result = compile_and_run(
            lowered, {"x": data}, {"N": 64}, global_size=64,
            options=CompilerOptions(local_size=(16, 1, 1)),
        )
        np.testing.assert_allclose(result.output, data + 1)

    def test_lowering_rejects_programs_without_maps(self):
        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        prog = Lambda([x], pipe(x, split(4), join()))
        with pytest.raises(ValueError):
            lower_to_global(prog)
