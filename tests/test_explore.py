"""The rewrite-space exploration engine: enumeration, validity filtering,
pruning, verified evaluation, cache behaviour, and the explorer-vs-menu
acceptance criterion on real benchmarks."""

import numpy as np
import pytest

from repro.arith import Var
from repro.types import ArrayType, FLOAT
from repro.ir.nodes import Lambda, Param, UserFun
from repro.ir.dsl import map_
from repro.ir.typecheck import infer_types
from repro.ir.visit import clone_decl
from repro.cache import TuningCache
from repro.rewrite.autotune import autotune, default_candidates
from repro.rewrite.explore import (
    ExploreConfig,
    explore_program,
    _collect_parallel,
    _finish,
    _nesting_ok,
    _splits_divide,
)
from repro.rewrite.lowering import lower_to_global
from repro.rewrite.rules import map_to_glb, map_to_lcl, map_to_wrg
from repro.rewrite.strategies import rewrite_first
from repro.benchsuite.common import get_benchmark


def _toy_program():
    n = Var("N")
    x = Param(ArrayType(FLOAT, n), "x")
    double = UserFun("dbl", ["v"], "return v * 2.0f;", [FLOAT], FLOAT,
                     py=lambda v: v * 2.0)
    return Lambda([x], map_(double)(x))


def _dbl():
    return UserFun("dbl", ["v"], "return v * 2.0f;", [FLOAT], FLOAT,
                   py=lambda v: v * 2.0)


def _nested_body(outer_builder, inner_builder):
    """``outer(λrow. inner(dbl)(row))(x)`` over a 2-D input."""
    from repro.types import array
    from repro.ir.dsl import lam

    x = Param(array(FLOAT, Var("N"), Var("M")), "x")
    body = outer_builder(lam(lambda row: inner_builder(_dbl())(row)))(x)
    return Lambda([x], body)


class TestDimensionSemantics:
    """Per-dimension nesting rules of the thread-hierarchy checker."""

    def _check(self, prog):
        typed = clone_decl(prog)
        infer_types(typed.body)
        return _nesting_ok(typed.body)

    def test_same_dim_nested_glb_rejected(self):
        from repro.ir.dsl import map_glb

        prog = _nested_body(
            lambda f: map_glb(f, 0), lambda f: map_glb(f, 0)
        )
        assert not self._check(prog)

    def test_cross_dim_nested_glb_accepted(self):
        from repro.ir.dsl import map_glb

        prog = _nested_body(
            lambda f: map_glb(f, 1), lambda f: map_glb(f, 0)
        )
        assert self._check(prog)

    def test_lcl_needs_wrg_of_same_dim(self):
        from repro.ir.dsl import map_lcl, map_wrg

        mismatched = _nested_body(
            lambda f: map_wrg(f, 0), lambda f: map_lcl(f, 1)
        )
        assert not self._check(mismatched)
        matched = _nested_body(
            lambda f: map_wrg(f, 0), lambda f: map_lcl(f, 0)
        )
        assert self._check(matched)

    def test_2d_wrg_lcl_nest_accepted(self):
        """The tiled-mm hierarchy: wrg(1)(wrg(0)(lcl(1)(lcl(0))))."""
        from repro.types import array
        from repro.ir.dsl import lam, map_lcl, map_wrg

        x = Param(array(FLOAT, 4, 4, 4, 4), "x")
        body = map_wrg(
            lam(lambda a: map_wrg(
                lam(lambda b: map_lcl(
                    lam(lambda c: map_lcl(_dbl(), 0)(c)), 1
                )(b)), 0
            )(a)), 1
        )(x)
        assert self._check(Lambda([x], body))

    def test_beta_redex_bodies_are_checked(self):
        """Parallel maps inside a directly-applied lambda's body (the
        shape staged tiles use) must not escape the checker."""
        from repro.ir.nodes import FunCall
        from repro.ir.dsl import map_lcl

        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        p = Param(None, "p")
        redex = FunCall(Lambda([p], map_lcl(_dbl())(p)), [x])
        typed_prog = clone_decl(Lambda([x], redex))
        infer_types(typed_prog.body)
        # a bare mapLcl with no enclosing mapWrg is invalid
        assert not _nesting_ok(typed_prog.body)


class TestValidity:
    def test_lcl_outside_wrg_rejected(self):
        prog = _toy_program()
        body = rewrite_first(map_to_lcl(0), prog.body)
        typed = clone_decl(Lambda(list(prog.params), body))
        infer_types(typed.body)
        assert not _nesting_ok(typed.body)

    def test_wrg_without_lcl_rejected(self):
        prog = _toy_program()
        body = rewrite_first(map_to_wrg(0), prog.body)
        typed = clone_decl(Lambda(list(prog.params), body))
        infer_types(typed.body)
        assert not _nesting_ok(typed.body)

    def test_glb_schedule_accepted(self):
        prog = _toy_program()
        body = rewrite_first(map_to_glb(0), prog.body)
        typed = clone_decl(Lambda(list(prog.params), body))
        infer_types(typed.body)
        assert _nesting_ok(typed.body)
        assert len(_collect_parallel(typed.body)) == 1

    def test_non_dividing_split_rejected(self):
        from repro.rewrite.rules import split_join

        prog = _toy_program()
        body = rewrite_first(split_join(5), prog.body)
        typed = clone_decl(Lambda(list(prog.params), body))
        infer_types(typed.body)
        assert not _splits_divide(typed.body, {"N": 16})
        assert _splits_divide(typed.body, {"N": 20})

    def test_finish_lowers_everything(self):
        from repro.ir import patterns as pat
        from repro.ir.nodes import FunCall
        from repro.ir.visit import post_order

        finished = _finish(_toy_program().body)
        assert finished is not None
        highs = [
            e for e in post_order(finished)
            if isinstance(e, FunCall) and type(e.f) in (pat.Map, pat.Reduce)
        ]
        assert not highs


def test_one_step_rewrites_matches_apply_at():
    """The explorer's single-traversal enumerator yields exactly the
    variants (and position order) of the find_matches/apply_at pair."""
    from repro.ir.structural import canonical
    from repro.rewrite.rules import map_fusion, map_to_seq, split_join
    from repro.rewrite.strategies import (
        apply_at,
        find_matches,
        one_step_rewrites,
    )

    n = Var("N")
    x = Param(ArrayType(FLOAT, n), "x")
    double = UserFun("dbl", ["v"], "return v * 2.0f;", [FLOAT], FLOAT)
    body = map_(double)(map_(double)(x))

    for rule in (map_to_seq(), split_join(4), map_fusion()):
        variants = one_step_rewrites(rule, body)
        expected = [
            apply_at(rule, body, p)
            for p in range(len(find_matches(rule, body)))
        ]
        assert [canonical(v) for v in variants] == [
            canonical(e) for e in expected
        ]
    assert len(one_step_rewrites(map_to_seq(), body)) == 2


class TestToyExploration:
    def test_winner_matches_reference_bitwise(self, tmp_path):
        prog = _toy_program()
        n = 128
        data = np.linspace(-3, 3, n)
        result = explore_program(
            prog, {"x": data}, {"N": n},
            config=ExploreConfig(depth=2, max_eval=8),
            cache=TuningCache(tmp_path),
        )
        best = result.best()
        assert best.cycles is not None
        assert "kernel void" in best.kernel_source
        # every evaluated candidate passed the bitwise verification
        assert result.stats.verify_failures == 0
        assert result.stats.evaluated > 1

    def test_dedup_collapses_alpha_equivalent_derivations(self, tmp_path):
        prog = _toy_program()
        result = explore_program(
            prog, {"x": np.ones(64)}, {"N": 64},
            config=ExploreConfig(depth=3, max_eval=4),
            cache=TuningCache(tmp_path),
        )
        # Enumeration-time dedup (alpha-equivalent rewrite results) and
        # finish-time dedup (distinct derivations lowering to the same
        # schedule) are reported separately; the rate stays a fraction
        # of enumerated applications.
        assert result.stats.dedup_hits > 0
        assert result.stats.finish_dedup_hits > 0
        assert 0 < result.stats.dedup_hit_rate() <= 1

    def test_all_sequential_schedules_are_not_ranked(self, tmp_path):
        prog = _toy_program()
        result = explore_program(
            prog, {"x": np.ones(64)}, {"N": 64},
            config=ExploreConfig(depth=2, max_eval=8),
            cache=TuningCache(tmp_path),
        )
        for cand in result.candidates:
            assert _collect_parallel(
                clone_and_type(cand.program).body
            ), f"sequential schedule ranked: {cand.describe_trace()}"


def clone_and_type(prog):
    typed = clone_decl(prog)
    infer_types(typed.body)
    return typed


class TestCacheIntegration:
    def test_warm_run_compiles_nothing(self, tmp_path):
        prog = _toy_program()
        cache = TuningCache(tmp_path)
        config = ExploreConfig(depth=2, max_eval=6)
        cold = explore_program(prog, {"x": np.ones(64)}, {"N": 64},
                               config=config, cache=cache)
        warm = explore_program(prog, {"x": np.ones(64)}, {"N": 64},
                               config=config, cache=cache)
        assert cold.stats.compilations > 0
        assert warm.stats.compilations == 0
        assert warm.stats.executions == 0
        assert warm.stats.kernel_cache_hit_rate() == 1.0
        assert warm.stats.cycle_cache_hit_rate() == 1.0
        assert [c.cycles for c in warm.candidates] == [
            c.cycles for c in cold.candidates
        ]

    def test_changed_inputs_reuse_kernels_but_re_execute(self, tmp_path):
        prog = _toy_program()
        cache = TuningCache(tmp_path)
        config = ExploreConfig(depth=1, max_eval=4)
        explore_program(prog, {"x": np.ones(64)}, {"N": 64},
                        config=config, cache=cache)
        second = explore_program(prog, {"x": np.zeros(64)}, {"N": 64},
                                 config=config, cache=cache)
        assert second.stats.compilations == 0
        assert second.stats.executions > 0


@pytest.mark.parametrize("name", ["nn", "gemv", "mm-nvidia"])
def test_explorer_at_least_matches_the_menu(tmp_path, name):
    """Acceptance: at depth >= 3 the explorer finds a candidate at least
    as good (in parallelism-aware runtime) as the best of the old
    ``default_candidates`` menu, with every winner verified bitwise
    against the reference interpreter."""
    bench = get_benchmark(name)
    inputs, size_env = bench.inputs_for("small")
    high_level = bench.high_level(size_env)

    result = explore_program(
        high_level, inputs, size_env,
        config=ExploreConfig(depth=3, max_eval=10),
        cache=TuningCache(tmp_path),
    )
    menu_results = autotune(high_level, inputs, size_env)

    assert result.stats.verify_failures == 0
    assert result.best().runtime <= menu_results[0].runtime


def test_explorer_derives_2d_tiled_mm(tmp_path):
    """The tentpole scenario: from the high-level mm expression the
    explorer derives a 2-D tiled schedule — nested mapWrg dims, mapLcl
    nest, cooperative toLocal staging — that beats every 1-D candidate
    on measured runtime, with the parallelism-aware static cost ranking
    it first before execution."""
    from repro.ir import patterns as pat
    from repro.ir.visit import post_order
    from repro.ir.nodes import FunCall

    bench = get_benchmark("mm-nvidia")
    inputs, size_env = bench.inputs_for("small")
    high_level = bench.high_level(size_env)

    result = explore_program(
        high_level, inputs, size_env,
        config=ExploreConfig(depth=2, max_eval=10),
        cache=TuningCache(tmp_path),
    )
    assert result.stats.verify_failures == 0
    best = result.best()

    wrg_dims = set()
    lcl_dims = set()
    has_to_local = False
    for e in post_order(best.program.body):
        if not isinstance(e, FunCall):
            continue
        f = e.f
        while isinstance(f, pat.AddressSpaceWrapper):
            if isinstance(f, pat.ToLocal):
                has_to_local = True
            f = f.f
        if isinstance(f, pat.MapWrg):
            wrg_dims.add(f.dim)
        elif isinstance(f, pat.MapLcl):
            lcl_dims.add(f.dim)
    assert wrg_dims == {0, 1}
    assert lcl_dims == {0, 1}
    assert has_to_local
    assert best.local_size[0] > 1 and best.local_size[1] > 1

    # Beats every 1-D candidate on measured runtime...
    one_d = [
        c for c in result.candidates
        if c.local_size[1] == 1 and c.global_size[1] == 1
    ]
    assert all(best.runtime < c.runtime for c in one_d)
    # ...and the static model already ranked it first.
    static_best = min(result.candidates, key=lambda c: c.static_cost)
    assert static_best is best


def test_autotune_rewired_on_explorer(tmp_path):
    prog = _toy_program()
    results = autotune(
        prog, {"x": np.arange(64, dtype=float)}, {"N": 64},
        explore_config=ExploreConfig(depth=2, max_eval=6),
        cache=TuningCache(tmp_path),
    )
    assert results
    runtimes = [r.runtime for r in results]
    assert runtimes == sorted(runtimes)
    assert "kernel void" in results[0].kernel_source


def test_default_candidates_tile_irregular_sizes():
    """n with no configured chunk divisor still gets a work-group tiling
    (the largest divisor below the biggest chunk)."""
    prog = _toy_program()
    candidates = default_candidates(prog, 48, chunks=(32, 64, 128))
    labels = [c.label for c in candidates]
    assert "mapGlb" in labels
    assert any("chunk=48" in l for l in labels)

    # A small prime still tiles as one work-group (chunk = n)...
    prime = default_candidates(prog, 17, chunks=(32, 64, 128))
    assert any("chunk=17" in c.label for c in prime)

    # ...but a prime above every chunk genuinely cannot be split.
    big_prime = default_candidates(prog, 257, chunks=(32, 64, 128))
    assert [c.label for c in big_prime] == ["mapGlb"]
