"""Tests for the simulated OpenCL platform (lexer, parser, interpreter)."""

import numpy as np
import pytest

from repro.opencl import Buffer, Counters, OpenCLProgram, launch
from repro.opencl.cost import DEVICES, estimate_cycles
from repro.opencl.cparser import ParseError, parse
from repro.opencl.interp import BarrierDivergence, ExecError
from repro.opencl.lexer import LexError, tokenize


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("kernel void f(int x) { x += 1; }")
        texts = [t.text for t in toks if t.kind != "eof"]
        assert texts == ["kernel", "void", "f", "(", "int", "x", ")", "{",
                         "x", "+=", "1", ";", "}"]

    def test_float_suffix(self):
        toks = tokenize("0.5f 2.0f 1e-3f 3.0")
        kinds = [(t.kind, t.text) for t in toks if t.kind != "eof"]
        assert kinds == [("float", "0.5"), ("float", "2.0"),
                         ("float", "1e-3"), ("float", "3.0")]

    def test_comments_skipped(self):
        toks = tokenize("a /* hi \n there */ b // end\nc")
        assert [t.text for t in toks if t.kind == "ident"] == ["a", "b", "c"]

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestParser:
    def test_kernel_signature(self):
        prog = parse(
            "kernel void K(const global float * restrict x, global float *y,"
            " int n) { }"
        )
        assert prog.kernels == ["K"]
        k = prog.functions["K"]
        assert [p.name for p in k.params] == ["x", "y", "n"]
        assert k.params[0].is_pointer and k.params[0].is_restrict

    def test_helper_and_kernel(self):
        prog = parse(
            "float add(float a, float b) { return a + b; }\n"
            "kernel void K(global float *x) { x[0] = add(x[0], 1.0f); }"
        )
        assert set(prog.functions) == {"add", "K"}

    def test_typedef_struct(self):
        prog = parse(
            "typedef struct { float _0; int _1; } Tuple2_float_int;\n"
            "kernel void K(global float *x) { Tuple2_float_int t;"
            " t._0 = 1.0f; t._1 = 2; x[0] = t._0; }"
        )
        assert "Tuple2_float_int" in prog.structs

    def test_vector_literal_cast(self):
        prog = parse(
            "kernel void K(global float *x) {"
            " float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f);"
            " x[0] = v.x; }"
        )
        assert "K" in prog.functions

    def test_parse_error_reports_line(self):
        with pytest.raises(ParseError):
            parse("kernel void K(global float *x) { x[0] = ; }")


def run(source, global_size, local_size, **buffers):
    prog = OpenCLProgram(source)
    return launch(prog, global_size, local_size, buffers)


class TestExecution:
    def test_vector_add(self):
        src = """
        kernel void K(const global float * restrict a,
                      const global float * restrict b,
                      global float *out, int n) {
          int i = get_global_id(0);
          if (i < n) { out[i] = a[i] + b[i]; }
        }
        """
        a = Buffer.from_array(np.arange(16, dtype=float))
        b = Buffer.from_array(np.ones(16))
        out = Buffer.zeros(16)
        run(src, 16, 4, a=a, b=b, out=out, n=16)
        np.testing.assert_allclose(out.data, np.arange(16) + 1)

    def test_work_group_reduction_with_barrier(self):
        src = """
        kernel void K(const global float * restrict x, global float *out) {
          local float tmp[8];
          int l = get_local_id(0);
          int g = get_global_id(0);
          tmp[l] = x[g];
          barrier(CLK_LOCAL_MEM_FENCE);
          for (int s = 4; s > 0; s = s / 2) {
            if (l < s) { tmp[l] = tmp[l] + tmp[l + s]; }
            barrier(CLK_LOCAL_MEM_FENCE);
          }
          if (l < 1) { out[get_group_id(0)] = tmp[0]; }
        }
        """
        x = Buffer.from_array(np.arange(16, dtype=float))
        out = Buffer.zeros(2)
        run(src, 16, 8, x=x, out=out)
        np.testing.assert_allclose(out.data, [28.0, 92.0])

    def test_strided_group_loop(self):
        # Figure 7 style: fewer groups than chunks.
        src = """
        kernel void K(const global float * restrict x, global float *out, int n) {
          for (int wg = get_group_id(0); wg < n / 4; wg += get_num_groups(0)) {
            int l = get_local_id(0);
            out[wg * 4 + l] = x[wg * 4 + l] * 2.0f;
          }
        }
        """
        x = Buffer.from_array(np.arange(32, dtype=float))
        out = Buffer.zeros(32)
        run(src, 8, 4, x=x, out=out, n=32)
        np.testing.assert_allclose(out.data, np.arange(32) * 2)

    def test_vector_load_store(self):
        src = """
        kernel void K(const global float * restrict x, global float *out) {
          int i = get_global_id(0);
          float4 v = vload4(i, x);
          vstore4(v * 2.0f, i, out);
        }
        """
        x = Buffer.from_array(np.arange(16, dtype=float))
        out = Buffer.zeros(16)
        run(src, 4, 4, x=x, out=out)
        np.testing.assert_allclose(out.data, np.arange(16) * 2)

    def test_struct_values(self):
        src = """
        typedef struct { float _0; int _1; } Tuple2_float_int;
        kernel void K(const global float * restrict x, global float *out, int n) {
          Tuple2_float_int best;
          best._0 = x[0]; best._1 = 0;
          for (int i = 1; i < n; i += 1) {
            if (x[i] < best._0) { best._0 = x[i]; best._1 = i; }
          }
          out[0] = best._0;
          out[1] = (float) best._1;
        }
        """
        x = Buffer.from_array([5.0, 3.0, 4.0, 1.0, 2.0])
        out = Buffer.zeros(2)
        run(src, 1, 1, x=x, out=out, n=5)
        assert out.data[0] == 1.0
        assert out.data[1] == 3.0

    def test_helper_function_call(self):
        src = """
        float sq(float v) { return v * v; }
        kernel void K(const global float * restrict x, global float *out) {
          int i = get_global_id(0);
          out[i] = sq(x[i]);
        }
        """
        x = Buffer.from_array([1.0, 2.0, 3.0, 4.0])
        out = Buffer.zeros(4)
        run(src, 4, 2, x=x, out=out)
        np.testing.assert_allclose(out.data, [1, 4, 9, 16])

    def test_math_builtins(self):
        src = """
        kernel void K(const global float * restrict x, global float *out) {
          int i = get_global_id(0);
          out[i] = sqrt(fabs(x[i]));
        }
        """
        x = Buffer.from_array([-4.0, 9.0])
        out = Buffer.zeros(2)
        run(src, 2, 1, x=x, out=out)
        np.testing.assert_allclose(out.data, [2.0, 3.0])

    def test_c_integer_division_truncates(self):
        src = """
        kernel void K(global int *out) {
          out[0] = (0 - 7) / 2;
          out[1] = (0 - 7) % 2;
          out[2] = 7 / 2;
        }
        """
        out = Buffer.zeros(3, "int")
        run(src, 1, 1, out=out)
        assert list(out.data) == [-3, -1, 3]

    def test_missing_arg_raises(self):
        src = "kernel void K(global float *x) { x[0] = 1.0f; }"
        prog = OpenCLProgram(src)
        with pytest.raises(KeyError):
            launch(prog, 1, 1, {})

    def test_bad_geometry_raises(self):
        src = "kernel void K(global float *x) { x[0] = 1.0f; }"
        prog = OpenCLProgram(src)
        with pytest.raises(ValueError):
            launch(prog, 10, 4, {"x": Buffer.zeros(1)})

    def test_barrier_divergence_detected(self):
        src = """
        kernel void K(global float *x) {
          if (get_local_id(0) < 1) { barrier(CLK_LOCAL_MEM_FENCE); }
          x[get_global_id(0)] = 1.0f;
        }
        """
        prog = OpenCLProgram(src)
        with pytest.raises(BarrierDivergence):
            launch(prog, 2, 2, {"x": Buffer.zeros(2)})


class TestCounters:
    def test_memory_traffic_counted(self):
        src = """
        kernel void K(const global float * restrict x, global float *out) {
          int i = get_global_id(0);
          out[i] = x[i] + 1.0f;
        }
        """
        x = Buffer.from_array(np.zeros(8))
        out = Buffer.zeros(8)
        counters = run(src, 8, 4, x=x, out=out)
        assert counters.global_loads == 8
        assert counters.global_stores == 8
        assert counters.flops == 8
        assert counters.work_items == 8

    def test_idivmod_counted(self):
        src = """
        kernel void K(global int *out, int n) {
          int i = get_global_id(0);
          out[i] = (i / n) + (i % n);
        }
        """
        out = Buffer.zeros(8, "int")
        counters = run(src, 8, 4, out=out, n=3)
        assert counters.idivmod == 16

    def test_constant_divisor_is_cheap(self):
        """Driver compilers strength-reduce literal divisors."""
        src = """
        kernel void K(global int *out, int n) {
          int i = get_global_id(0);
          out[i] = (i / 3) + (i % 4);
        }
        """
        out = Buffer.zeros(8, "int")
        counters = run(src, 8, 4, out=out, n=8)
        assert counters.idivmod == 0
        assert counters.idivmod_const == 8  # /3 is mul-by-reciprocal
        # %4 became a mask (plain iop)

    def test_barriers_counted_per_item(self):
        src = """
        kernel void K(global float *x) {
          barrier(CLK_LOCAL_MEM_FENCE);
          x[get_global_id(0)] = 1.0f;
        }
        """
        counters = run(src, 8, 4, x=Buffer.zeros(8))
        assert counters.barriers == 8

    def test_cost_model_orders_sanely(self):
        counters = Counters(flops=100, global_loads=100)
        cheap = Counters(flops=100, local_loads=100)
        for profile in DEVICES.values():
            assert estimate_cycles(counters, profile) > estimate_cycles(
                cheap, profile
            )
