"""Unit and property tests for the symbolic arithmetic substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import (
    Cst,
    IntDiv,
    Mod,
    Prod,
    Range,
    Sum,
    Var,
    bound_max,
    bound_min,
    prove_ge_zero,
    prove_lt,
    simplify,
    substitute,
)
from repro.arith.expr import free_vars, to_expr
from repro.arith.simplify import int_div, mod, pow_, sum_of, prod_of, to_int


def var(name, lo=0, hi=None):
    return Var(name, Range.of(lo, hi))


class TestConstruction:
    def test_constant_folding_add(self):
        assert Cst(2) + Cst(3) == Cst(5)

    def test_constant_folding_mul(self):
        assert Cst(4) * Cst(5) == Cst(20)

    def test_constant_folding_div(self):
        assert Cst(7) // Cst(2) == Cst(3)

    def test_constant_folding_mod(self):
        assert Cst(7) % Cst(2) == Cst(1)

    def test_int_coercion(self):
        x = Var("x")
        assert x + 0 == x
        assert x * 1 == x
        assert x * 0 == Cst(0)

    def test_like_terms_collected(self):
        x = Var("x")
        assert x + x == Cst(2) * x

    def test_like_terms_cancel(self):
        x = Var("x")
        assert x - x == Cst(0)

    def test_sum_flattening(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        e = (x + y) + z
        assert isinstance(e, Sum)
        assert len(e.terms) == 3

    def test_product_flattening(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        e = (x * y) * z
        assert isinstance(e, Prod)
        assert len(e.factors) == 3

    def test_distribution(self):
        x, y = Var("x"), Var("y")
        e = Cst(2) * (x + y)
        assert e == Cst(2) * x + Cst(2) * y

    def test_commutativity_canonical(self):
        x, y = Var("x"), Var("y")
        assert x + y == y + x
        assert x * y == y * x

    def test_raw_constructors_do_not_simplify(self):
        x = Var("x")
        raw = Sum([x, Cst(0), Cst(0)])
        assert len(raw.terms) == 3

    def test_sum_requires_two_terms(self):
        with pytest.raises(ValueError):
            Sum([Cst(1)])

    def test_cst_requires_int(self):
        with pytest.raises(TypeError):
            Cst(1.5)

    def test_to_expr_rejects_junk(self):
        with pytest.raises(TypeError):
            to_expr("x")

    def test_to_int(self):
        assert to_int(Cst(3) + Cst(4)) == 7
        with pytest.raises(ValueError):
            to_int(Var("n"))


class TestPaperRules:
    """The six rules listed in section 5.3 of the paper."""

    def test_rule1_div_of_smaller(self):
        # x / y = 0 if x < y
        l_id = var("l_id", 0, Var("M"))
        assert l_id // Var("M") == Cst(0)

    def test_rule1_needs_proof(self):
        x = Var("x")  # range [1, inf): not provably < M
        e = x // Var("M")
        assert isinstance(e, IntDiv)

    def test_rule2_multiple_extraction(self):
        # (x * y + z) / y = x + z / y
        x, y, z = Var("x"), Var("y"), Var("z")
        assert (x * y + z) // y == x + z // y

    def test_rule3_mod_of_smaller(self):
        l_id = var("l_id", 0, Var("M"))
        assert l_id % Var("M") == l_id

    def test_rule4_div_mod_recomposition(self):
        # (x / y) * y + x mod y = x
        x, y = Var("x"), Var("y")
        e = (x // y) * y + x % y
        assert e == x

    def test_rule4_with_shared_coefficient(self):
        x, y = Var("x"), Var("y")
        e = Cst(3) * (x // y) * y + Cst(3) * (x % y)
        assert e == Cst(3) * x

    def test_rule5_mod_of_multiple(self):
        x, y = Var("x"), Var("y")
        assert (x * y) % y == Cst(0)

    def test_rule5_constant_multiple(self):
        x = Var("x")
        assert (Cst(6) * x) % Cst(3) == Cst(0)

    def test_rule6_mod_distribution(self):
        # (wg_id * M + l_id) mod M = l_id  given l_id < M
        m = Var("M")
        wg_id = var("wg_id", 0, Var("N"))
        l_id = var("l_id", 0, m)
        assert (wg_id * m + l_id) % m == l_id

    def test_div_distribution(self):
        m = Var("M")
        wg_id = var("wg_id", 0, Var("N"))
        l_id = var("l_id", 0, m)
        assert (wg_id * m + l_id) // m == wg_id


class TestFigure6:
    """The matrix-transposition index of Figure 6 simplifies to line 3."""

    def test_full_simplification(self):
        m, n = Var("M"), Var("N")
        wg_id = var("wg_id", 0, n)
        l_id = var("l_id", 0, m)
        flat = wg_id * m + l_id
        # line 1 of Figure 6 (with x = flat):
        remapped = (flat // m) + (flat % m) * n
        index = (remapped // n) * n + remapped % n
        assert index == l_id * n + wg_id

    def test_intermediate_step_line2(self):
        m, n = Var("M"), Var("N")
        wg_id = var("wg_id", 0, n)
        l_id = var("l_id", 0, m)
        flat = wg_id * m + l_id
        remapped = (flat // m) + (flat % m) * n
        assert remapped == wg_id + l_id * n


class TestDivMod:
    def test_nested_div(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        assert (x // y) // z == x // (y * z)

    def test_div_cancel_factor(self):
        x, y = Var("x"), Var("y")
        assert (x * y) // y == x

    def test_div_gcd_reduction(self):
        x = Var("x")
        assert (Cst(4) * x) // Cst(8) == x // Cst(2)

    def test_mod_idempotent(self):
        x, y = Var("x"), Var("y")
        assert (x % y) % y == x % y

    def test_mod_common_factor(self):
        x = Var("x")
        assert (Cst(4) * x) % Cst(8) == Cst(4) * (x % Cst(2))

    def test_div_by_one(self):
        x = Var("x")
        assert x // Cst(1) == x

    def test_mod_by_one(self):
        x = Var("x")
        assert x % Cst(1) == Cst(0)

    def test_self_div(self):
        x = Var("x")
        assert x // x == Cst(1)

    def test_self_mod(self):
        x = Var("x")
        assert x % x == Cst(0)


class TestPow:
    def test_pow_zero(self):
        assert pow_(Var("x"), Cst(0)) == Cst(1)

    def test_pow_one(self):
        x = Var("x")
        assert pow_(x, Cst(1)) == x

    def test_pow_const(self):
        assert pow_(Cst(2), Cst(10)) == Cst(1024)


class TestRanges:
    def test_bound_of_var(self):
        n = Var("N")
        i = var("i", 0, n)
        assert bound_min(i) == Cst(0)
        assert bound_max(i) == n - 1

    def test_bound_of_sum(self):
        n = Var("N")
        i = var("i", 0, n)
        assert bound_max(i + 1) == n

    def test_bound_of_product(self):
        i = var("i", 0, 4)
        j = var("j", 0, 8)
        assert bound_max(i * j) == Cst(21)
        assert bound_min(i * j) == Cst(0)

    def test_unbounded_var(self):
        assert bound_max(Var("N")) is None

    def test_prove_lt(self):
        n = Var("N")
        i = var("i", 0, n)
        assert prove_lt(i, n)
        assert not prove_lt(n, i)

    def test_prove_ge_zero(self):
        i = var("i", 0, 4)
        assert prove_ge_zero(i)
        assert prove_ge_zero(i * 3 + 1)

    def test_split_index_in_bounds(self):
        # 2*l_id + i with l_id in [0,64), i in [0,2) is < 128
        l_id = var("l_id", 0, 64)
        i = var("i", 0, 2)
        e = Cst(2) * l_id + i
        assert prove_lt(e, Cst(128))
        assert (Cst(2) * l_id + i) % Cst(128) == e


class TestEvalSubstitute:
    def test_evaluate(self):
        x, y = Var("x"), Var("y")
        e = (x * y + 3) % (y + 1)
        assert e.evaluate({"x": 5, "y": 4}) == (5 * 4 + 3) % 5

    def test_evaluate_missing_var(self):
        with pytest.raises(KeyError):
            Var("q").evaluate({})

    def test_substitute(self):
        x, y = Var("x"), Var("y")
        e = x * 2 + y
        assert substitute(e, {x: Cst(3)}) == Cst(6) + y

    def test_free_vars(self):
        x, y = Var("x"), Var("y")
        assert free_vars(x * 2 + y % x) == {x, y}

    def test_division_by_zero_raises(self):
        e = IntDiv(Var("x"), Var("y"))
        with pytest.raises(ZeroDivisionError):
            e.evaluate({"x": 1, "y": 0})


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------

_names = ("a", "b", "c")


def _exprs(depth=3):
    leaves = st.one_of(
        st.integers(min_value=0, max_value=12).map(Cst),
        st.sampled_from([Var(n, Range.of(1, 13)) for n in _names]),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: Sum([p[0], p[1]])),
            st.tuples(children, children).map(lambda p: Prod([p[0], p[1]])),
            st.tuples(children, children).map(lambda p: IntDiv(p[0], Sum([p[1], Cst(1)]))),
            st.tuples(children, children).map(lambda p: Mod(p[0], Sum([p[1], Cst(1)]))),
        )

    return st.recursive(leaves, extend, max_leaves=depth * 4)


@given(_exprs(), st.integers(1, 12), st.integers(1, 12), st.integers(1, 12))
@settings(max_examples=300, deadline=None)
def test_simplify_preserves_value(expr, a, b, c):
    """Simplification never changes the value of an expression."""
    env = {"a": a, "b": b, "c": c}
    assert simplify(expr).evaluate(env) == expr.evaluate(env)


@given(_exprs(), st.integers(1, 12), st.integers(1, 12), st.integers(1, 12))
@settings(max_examples=200, deadline=None)
def test_simplify_idempotent(expr, a, b, c):
    env = {"a": a, "b": b, "c": c}
    once = simplify(expr)
    twice = simplify(once)
    assert twice.evaluate(env) == once.evaluate(env)


@given(_exprs(), _exprs())
@settings(max_examples=150, deadline=None)
def test_prove_lt_is_sound(x, y):
    """Whenever the prover claims x < y, every valuation agrees."""
    if prove_lt(x, y):
        for a in (1, 5, 12):
            for b in (1, 7):
                env = {"a": a, "b": b, "c": 3}
                assert x.evaluate(env) < y.evaluate(env)


@given(_exprs())
@settings(max_examples=150, deadline=None)
def test_bounds_are_sound(expr):
    lo, hi = bound_min(expr), bound_max(expr)
    for a in (1, 4, 12):
        env = {"a": a, "b": 2, "c": 9}
        v = expr.evaluate(env)
        if lo is not None:
            assert lo.evaluate(env) <= v
        if hi is not None:
            assert v <= hi.evaluate(env)
