"""Edge-case tests for the OpenCL interpreter and cost model."""

import numpy as np
import pytest

from repro.opencl import Buffer, Counters, OpenCLProgram, launch
from repro.opencl.cost import DEVICES, DeviceProfile, estimate_cycles
from repro.opencl.interp import ExecError, Pointer, _c_int_div, _c_int_mod


def run(source, global_size, local_size, **args):
    return launch(OpenCLProgram(source), global_size, local_size, args)


class TestCSemantics:
    @pytest.mark.parametrize(
        "a,b,q,r",
        [(7, 2, 3, 1), (-7, 2, -3, -1), (7, -2, -3, 1), (-7, -2, 3, -1)],
    )
    def test_truncating_division(self, a, b, q, r):
        assert _c_int_div(a, b) == q
        assert _c_int_mod(a, b) == r

    def test_division_by_zero(self):
        with pytest.raises(ExecError):
            _c_int_div(1, 0)

    def test_struct_passed_by_value(self):
        src = """
        typedef struct { float _0; float _1; } T2;
        T2 bump(T2 t) { t._0 = t._0 + 1.0f; return t; }
        kernel void K(global float *out) {
          T2 a;
          a._0 = 5.0f; a._1 = 0.0f;
          T2 b = bump(a);
          out[0] = a._0;
          out[1] = b._0;
        }
        """
        out = Buffer.zeros(2)
        run(src, 1, 1, out=out)
        assert out.data[0] == 5.0  # caller's struct untouched
        assert out.data[1] == 6.0

    def test_vector_passed_by_value(self):
        src = """
        float4 bump(float4 v) { v.x = v.x + 1.0f; return v; }
        kernel void K(global float *out) {
          float4 a = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
          float4 b = bump(a);
          out[0] = a.x;
          out[1] = b.x;
        }
        """
        out = Buffer.zeros(2)
        run(src, 1, 1, out=out)
        assert list(out.data) == [1.0, 2.0]

    def test_vector_swizzle_members(self):
        src = """
        kernel void K(global float *out) {
          float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
          out[0] = v.x + v.y + v.z + v.w;
          out[1] = v.s0 + v.s3;
        }
        """
        out = Buffer.zeros(2)
        run(src, 1, 1, out=out)
        assert list(out.data) == [10.0, 5.0]

    def test_vector_broadcast_literal(self):
        src = """
        kernel void K(global float *out) {
          float4 v = (float4)(2.0f);
          vstore4(v, 0, out);
        }
        """
        out = Buffer.zeros(4)
        run(src, 1, 1, out=out)
        assert list(out.data) == [2.0] * 4

    def test_early_return_in_kernel(self):
        src = """
        kernel void K(global float *out, int n) {
          int i = get_global_id(0);
          if (i >= n) { return; }
          out[i] = 1.0f;
        }
        """
        out = Buffer.zeros(8)
        run(src, 8, 4, out=out, n=5)
        assert list(out.data) == [1.0] * 5 + [0.0] * 3

    def test_ternary_expression(self):
        src = """
        kernel void K(global float *out) {
          int i = get_global_id(0);
          out[i] = (i < 2) ? 1.0f : 0.0f;
        }
        """
        out = Buffer.zeros(4)
        run(src, 4, 2, out=out)
        assert list(out.data) == [1.0, 1.0, 0.0, 0.0]

    def test_logical_short_circuit(self):
        # The second operand would divide by zero if evaluated.
        src = """
        kernel void K(global int *out, int z) {
          int i = get_global_id(0);
          if (z > 0 && (i / z) > 100) { out[i] = 1; }
          else { out[i] = 2; }
        }
        """
        out = Buffer.zeros(2, "int")
        run(src, 2, 1, out=out, z=0)
        assert list(out.data) == [2, 2]


class TestPointerSemantics:
    def test_pointer_offsets(self):
        p = Pointer(np.arange(10, dtype=float), 2, "global")
        assert p.load(1) == 3.0
        q = p.plus(3)
        assert q.load(0) == 5.0

    def test_pointer_arithmetic_in_kernel(self):
        src = """
        kernel void K(const global float * restrict x, global float *out, int n) {
          int row = get_global_id(0);
          float4 v = vload4(0, x + row * 4);
          vstore4(v, row, out);
        }
        """
        data = np.arange(16, dtype=float)
        out = Buffer.zeros(16)
        run(src, 4, 2, x=Buffer.from_array(data), out=out, n=4)
        np.testing.assert_allclose(out.data, data)


class TestLoadCaching:
    def test_repeat_load_is_cached(self):
        src = """
        kernel void K(const global float * restrict x, global float *out) {
          float s = 0.0f;
          for (int i = 0; i < 4; i += 1) { s = s + x[0]; }
          out[0] = s;
        }
        """
        counters = run(src, 1, 1, x=Buffer.from_array([2.0]), out=Buffer.zeros(1))
        assert counters.global_loads == 1
        assert counters.cached_loads == 3

    def test_caches_are_per_work_item(self):
        src = """
        kernel void K(const global float * restrict x, global float *out) {
          out[get_global_id(0)] = x[0];
        }
        """
        counters = run(src, 4, 2, x=Buffer.from_array([1.0]), out=Buffer.zeros(4))
        # every work-item pays its own first load
        assert counters.global_loads == 4
        assert counters.cached_loads == 0


class TestCostModel:
    def test_profiles_have_all_weights(self):
        for profile in DEVICES.values():
            assert profile.global_access > profile.local_access
            assert profile.idivmod > profile.idivmod_const
            assert profile.flop > 0

    def test_estimate_is_monotone_in_counters(self):
        base = Counters(flops=10)
        more = Counters(flops=10, global_loads=100)
        for profile in DEVICES.values():
            assert estimate_cycles(more, profile) > estimate_cycles(base, profile)

    def test_counters_merge(self):
        a = Counters(flops=1, barriers=2)
        b = Counters(flops=3, iops=4)
        merged = a.merged_with(b)
        assert merged.flops == 4
        assert merged.barriers == 2
        assert merged.iops == 4
