#!/usr/bin/env python3
"""N-Body simulation stepping: both Table 1 styles, compared.

Runs a few integration steps of the N-Body system using the NVIDIA-SDK
style (local-memory tiling) and the AMD-SDK style (flat, vectorized)
Lift programs, checks them against each other and against NumPy, and
compares their simulated costs — locality in action.
"""

import numpy as np

from repro.benchsuite.nbody import TILE, _make_inputs, _oracle, _program_amd, _program_nvidia
from repro.compiler import CompilerOptions, compile_kernel, execute_kernel
from repro.opencl.cost import DEVICES, estimate_cycles


def step(program, inputs, n, local_size):
    kernel = compile_kernel(program, CompilerOptions(local_size=local_size))
    return execute_kernel(
        kernel,
        inputs,
        {},
        global_size=(n, 1, 1),
        local_size=local_size,
    )


def main() -> None:
    n = 64
    rng = np.random.default_rng(3)
    inputs = _make_inputs({"N": n}, rng)
    expected = _oracle(inputs, {"N": n})

    tiled = step(_program_nvidia(n), inputs, n, (TILE, 1, 1))
    flat = step(_program_amd(n), inputs, n, (64, 1, 1))

    np.testing.assert_allclose(tiled.output, expected, rtol=1e-7)
    np.testing.assert_allclose(flat.output, expected, rtol=1e-7)
    np.testing.assert_allclose(tiled.output, flat.output, rtol=1e-7)
    print(f"one N-Body step for {n} bodies: both styles match NumPy")

    profile = DEVICES["nvidia"]
    print(f"  tiled (local memory): "
          f"{tiled.counters.global_loads:>7} global loads, "
          f"{estimate_cycles(tiled.counters, profile):>10.0f} cycles")
    print(f"  flat  (all global):   "
          f"{flat.counters.global_loads:>7} global loads, "
          f"{estimate_cycles(flat.counters, profile):>10.0f} cycles")
    print("\nThe tiled version trades global reads for local-memory reuse —"
          "\nexactly the trade-off the two vendor SDK samples embody.")

    # A short trajectory: feed positions/velocities back in.
    state = dict(inputs)
    for i in range(3):
        result = step(_program_amd(n), state, n, (64, 1, 1))
        interleaved = result.output.reshape(n, 8)
        state["pos"] = interleaved[:, :4].ravel()
        state["vel"] = interleaved[:, 4:].ravel()
    print(f"\n3 further steps integrated; "
          f"centre of mass drift: "
          f"{abs(state['pos'].reshape(n, 4)[:, :3].mean()):.4f}")


if __name__ == "__main__":
    main()
