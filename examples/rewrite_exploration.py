#!/usr/bin/env python3
"""From portable high-level IL to tuned low-level IL via rewriting.

The paper separates *what* to compute (high-level IL) from *how* (the
OpenCL-specific low-level IL); the bridge is the rewrite system of its
prior work [18].  This example takes a portable program, explores the
rewrite space, lowers two variants, compiles both and compares their
simulated performance.
"""

import numpy as np

from repro.arith import Var
from repro.types import ArrayType, FLOAT
from repro.ir.nodes import Lambda, Param, UserFun
from repro.ir.dsl import map_
from repro.ir.printer import print_decl
from repro.compiler import CompilerOptions, compile_kernel, execute_kernel
from repro.opencl.cost import DEVICES, estimate_cycles
from repro.rewrite import lower_to_global, lower_to_work_groups
from repro.rewrite.rules import lowering_rules
from repro.rewrite.strategies import explore


def high_level_program() -> Lambda:
    n = Var("N")
    x = Param(ArrayType(FLOAT, n), "x")
    gelu_ish = UserFun(
        "scaleClamp", ["v"],
        "float s = v * 0.5f; return fmin(fmax(s, 0.0f), 1.0f);",
        [FLOAT], FLOAT,
        py=lambda v: min(max(v * 0.5, 0.0), 1.0),
    )
    return Lambda([x], map_(gelu_ish)(x))


def main() -> None:
    program = high_level_program()
    print("=== portable high-level program ===")
    print(print_decl(program))
    print()

    variants = explore(lowering_rules(), program.body, depth=1)
    print(f"rewrite exploration (depth 1): {len(variants)} variants")
    for _, trace in variants:
        print("  applied:", " -> ".join(trace) if trace else "(original)")
    print()

    n = 1024
    x = np.linspace(-4, 4, n)
    expected = np.clip(x * 0.5, 0.0, 1.0)

    candidates = {
        "mapGlb (flat)": (lower_to_global(program), (64, 1, 1), n),
        "mapWrg/mapLcl (chunked)": (
            lower_to_work_groups(high_level_program(), chunk=128),
            (64, 1, 1),
            512,
        ),
    }
    profile = DEVICES["amd"]
    for label, (lowered, local, global_size) in candidates.items():
        kernel = compile_kernel(lowered, CompilerOptions(local_size=local))
        result = execute_kernel(
            kernel, {"x": x}, {"N": n}, global_size=(global_size, 1, 1),
            local_size=local,
        )
        np.testing.assert_allclose(result.output, expected, rtol=1e-12)
        print(f"{label:<26} OK  estimated cycles: "
              f"{estimate_cycles(result.counters, profile):>10.0f}")

    print("\nBoth lowerings compute the same function; picking between "
          "them is the search problem of the paper's prior work [18].")

    # The full engine: enumerate the derivation tree, dedup by structural
    # hash, prune with the static cost model, then compile/simulate/verify
    # the survivors (with a persistent tuning cache, so re-running this
    # example skips every recompilation).
    import tempfile

    from repro.cache import TuningCache
    from repro.rewrite.explore import ExploreConfig, explore_program

    cache = TuningCache(tempfile.mkdtemp(prefix="repro-example-cache-"))
    result = explore_program(
        high_level_program(), {"x": x}, {"N": n},
        config=ExploreConfig(depth=2, max_eval=8), cache=cache,
    )
    print("\n=== derivation-tree exploration (depth 2) ===")
    print(result.describe())

    # Dimension-aware mapping: on a *nested* map program (matrix
    # multiplication) the explorer's menu includes the 2-D tiling macro
    # rule, and the parallelism-aware cost model prefers the wide tiled
    # schedule — nested mapWrg(1)/mapWrg(0), a mapLcl nest and
    # cooperative toLocal staging, derived, not hand-written.
    from repro.benchsuite.common import get_benchmark

    bench = get_benchmark("mm")
    mm_inputs, mm_sizes = bench.inputs_for("small")
    mm_result = explore_program(
        bench.high_level(mm_sizes), mm_inputs, mm_sizes,
        config=ExploreConfig(depth=2, max_eval=8), cache=cache,
    )
    print("\n=== 2-D tiled matrix multiply, derived by rewriting ===")
    print(mm_result.describe(top=3))


if __name__ == "__main__":
    main()
