#!/usr/bin/env python3
"""Quickstart: the paper's Listing 1 — partial dot product.

Builds the exact Lift IL program of Listing 1, compiles it with the full
optimization pipeline, prints the generated OpenCL kernel (compare with
the paper's Figure 7), runs it on the simulated device and checks the
result against NumPy.
"""

import numpy as np

from repro.arith import Var
from repro.types import ArrayType, FLOAT
from repro.ir.nodes import FunCall, Lambda, Param
from repro.ir.dsl import (
    add,
    compose,
    f32,
    get,
    id_fun,
    iterate,
    join,
    lam2,
    map_lcl,
    map_seq,
    map_wrg,
    mult_and_sum_up,
    reduce_seq,
    split,
    to_global,
    to_local,
    zip_,
)
from repro.compiler import CompilerOptions, compile_kernel, execute_kernel


def partial_dot_listing1() -> Lambda:
    """Listing 1: one work-group of 64 threads reduces 128 elements."""
    n = Var("N")
    x = Param(ArrayType(FLOAT, n), "x")
    y = Param(ArrayType(FLOAT, n), "y")

    multiply_pairs = lam2(
        lambda acc, xy: FunCall(mult_and_sum_up(), [acc, get(xy, 0), get(xy, 1)])
    )

    work_group = compose(
        join(),
        to_global(map_lcl(map_seq(id_fun()))),
        split(1),
        iterate(
            6,
            compose(
                join(),
                map_lcl(compose(to_local(map_seq(id_fun())),
                                reduce_seq(add(), f32(0.0)))),
                split(2),
            ),
        ),
        join(),
        map_lcl(compose(to_local(map_seq(id_fun())),
                        reduce_seq(multiply_pairs, f32(0.0)))),
        split(2),
    )

    body = compose(join(), map_wrg(work_group), split(128))(zip_(x, y))
    return Lambda([x, y], body)


def main() -> None:
    program = partial_dot_listing1()
    options = CompilerOptions(local_size=(64, 1, 1))
    kernel = compile_kernel(program, options)

    print("=== Generated OpenCL kernel (compare with the paper's Figure 7) ===")
    print(kernel.source)

    n = 1024
    rng = np.random.default_rng(0)
    x = rng.random(n)
    y = rng.random(n)
    result = execute_kernel(
        kernel, {"x": x, "y": y}, {"N": n}, global_size=(256, 1, 1)
    )

    expected = (x * y).reshape(-1, 128).sum(axis=1)
    np.testing.assert_allclose(result.output, expected, rtol=1e-12)
    print(f"partial dot product over {n} elements: OK "
          f"({len(expected)} work-group results match NumPy)")
    print(f"executed {result.counters.work_items} work-items, "
          f"{result.counters.flops} floating-point operations, "
          f"{result.counters.barriers} barriers")


if __name__ == "__main__":
    main()
