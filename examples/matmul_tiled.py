#!/usr/bin/env python3
"""Tiled matrix multiplication, the MM benchmark's NVIDIA variant.

Shows a non-trivial optimization structure expressed purely in the Lift
IL: 2D work-groups, cooperative local-memory staging of A- and B-tiles,
an array accumulator updated across k-tiles, and output reassembly
through a scatter permutation.  The same program is compiled at the
paper's three optimization levels to show the Figure 8 effect.
"""

import numpy as np

from repro.benchsuite.mm import _program_nvidia, T
from repro.compiler import CompilerOptions, compile_kernel, execute_kernel
from repro.opencl.cost import DEVICES, estimate_cycles


def main() -> None:
    m = n = k = 16
    program = _program_nvidia(m, n, k)

    rng = np.random.default_rng(1)
    a = rng.random((m, k))
    b = rng.random((k, n))
    expected = (a @ b).ravel()

    levels = {
        "no optimizations": CompilerOptions.none(local_size=(T, T, 1)),
        "barrier elim + control flow": CompilerOptions.barrier_cf(local_size=(T, T, 1)),
        "full (+ array access simp.)": CompilerOptions.all(local_size=(T, T, 1)),
    }

    profile = DEVICES["nvidia"]
    print(f"tiled {m}x{k} @ {k}x{n} matrix multiplication, tile {T}x{T}\n")
    for label, options in levels.items():
        kernel = compile_kernel(_program_nvidia(m, n, k), options)
        result = execute_kernel(
            kernel, {"A": a, "B": b}, {}, global_size=(n, m, 1),
            local_size=(T, T, 1),
        )
        np.testing.assert_allclose(result.output, expected, rtol=1e-9)
        cycles = estimate_cycles(result.counters, profile)
        print(f"  {label:<30} OK  "
              f"kernel: {len(kernel.source):>6} bytes, "
              f"estimated cycles: {cycles:>12.0f}")

    print("\nArray-access simplification shrinks both the kernel text and "
          "the executed index arithmetic — the paper's section 7.4 effect.")


if __name__ == "__main__":
    main()
