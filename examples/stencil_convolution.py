#!/usr/bin/env python3
"""2D stencil (convolution) with the paper's slide composition.

Demonstrates the data-layout patterns of section 3.2 working together:
``slide`` builds overlapping 1D windows; composed with ``map`` and
``transpose`` it builds 2D tiles and 2D windows entirely as views — no
intermediate arrays are ever materialized.
"""

import numpy as np
from scipy.signal import correlate2d

from repro.benchsuite.convolution import K, T, _program
from repro.compiler import CompilerOptions, compile_kernel, execute_kernel


def main() -> None:
    h = w = 16
    rng = np.random.default_rng(2)
    img = rng.random((h + K - 1, w + K - 1))   # input with halo
    weights = rng.random((K, K))

    program = _program(low_level=True, h=h, w=w)
    kernel = compile_kernel(program, CompilerOptions(local_size=(T, T, 1)))

    print(f"=== {K}x{K} convolution over a {h}x{w} image, "
          f"{T}x{T} work-group tiles ===")
    print(kernel.source)

    result = execute_kernel(
        kernel, {"img": img, "weights": weights}, {},
        global_size=(w, h, 1), local_size=(T, T, 1),
    )
    expected = correlate2d(img, weights, "valid").ravel()
    np.testing.assert_allclose(result.output, expected, rtol=1e-9)
    print("result matches scipy.signal.correlate2d: OK")
    print(f"local memory traffic: {result.counters.local_loads} loads / "
          f"{result.counters.local_stores} stores "
          f"(the staged tile is reused {result.counters.local_loads // max(result.counters.local_stores, 1)}x)")


if __name__ == "__main__":
    main()
