"""Repository-root pytest configuration.

Makes the ``tests`` package importable when running ``benchmarks/``
stand-alone (the benchmark harness reuses shared test programs such as
the Listing 1 dot product).
"""

import sys
from pathlib import Path

_ROOT = str(Path(__file__).parent)
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)
