"""Compiler throughput: how fast the Lift pipeline itself runs.

Not a paper experiment, but standard engineering hygiene for a compiler
repository: tracks the cost of each pipeline configuration on the most
structurally complex programs.
"""

import pytest

from repro.benchsuite.common import get_benchmark
from repro.compiler import CompilerOptions, compile_kernel
from tests.programs import partial_dot


def test_compile_dot_product(benchmark):
    options = CompilerOptions(local_size=(64, 1, 1))

    def compile_it():
        # memo=False: measure a real compilation, not the structural-key
        # compile memo.
        return compile_kernel(partial_dot(), options, memo=False)

    kernel = benchmark(compile_it)
    assert "kernel void" in kernel.source


@pytest.mark.parametrize("name", ["mm-nvidia", "convolution", "nbody-nvidia"])
def test_compile_benchmark_kernels(benchmark, name):
    bench = get_benchmark(name)
    size_env = dict(bench.sizes["small"])
    stage = bench.stages[0]
    options = CompilerOptions(local_size=stage.local_size)

    def compile_it():
        return compile_kernel(stage.build(size_env), options, memo=False)

    kernel = benchmark(compile_it)
    assert "kernel void" in kernel.source


@pytest.mark.parametrize("name", ["mm-nvidia"])
def test_compile_memo_hit(benchmark, name):
    """Repeat compiles of a structurally identical program are served by
    the structural-key memo — the dominant figure8 cost is compilation,
    and every lowering recipe/autotune candidate recompiles clones."""
    bench = get_benchmark(name)
    size_env = dict(bench.sizes["small"])
    stage = bench.stages[0]
    options = CompilerOptions(local_size=stage.local_size)
    compile_kernel(stage.build(size_env), options)  # prime the memo

    def compile_it():
        return compile_kernel(stage.build(size_env), options)

    kernel = benchmark(compile_it)
    assert "kernel void" in kernel.source
