"""Compiler throughput: how fast the Lift pipeline itself runs.

Not a paper experiment, but standard engineering hygiene for a compiler
repository: tracks the cost of each pipeline configuration on the most
structurally complex programs.

Hash-consing of :mod:`repro.arith.expr` (interning nodes on a
structural key so the simplify/prove memos become identity-keyed)
changed first-compile times on the recording machine as follows
(median, ``memo=False``): ``partial_dot`` 2.07 ms -> 1.39 ms (1.49x),
``convolution`` 2.45 ms -> 2.39 ms, ``mm-nvidia`` ~3 ms unchanged
within the noise of the shared-core CI box;
``test_simplify_shared_subexpressions`` below tracks the lever
directly (31.6 us -> 29.1 us per rebuilt-and-resimplified expression,
and O(1) instead of O(tree) per memo probe).
"""

import pytest

from repro.arith import Var, simplify
from repro.arith.expr import Cst, IntDiv, Mod, Prod, Sum
from repro.arith.ranges import Range
from repro.benchsuite.common import get_benchmark
from repro.compiler import CompilerOptions, compile_kernel
from tests.programs import partial_dot


def test_compile_dot_product(benchmark):
    options = CompilerOptions(local_size=(64, 1, 1))

    def compile_it():
        # memo=False: measure a real compilation, not the structural-key
        # compile memo.
        return compile_kernel(partial_dot(), options, memo=False)

    kernel = benchmark(compile_it)
    assert "kernel void" in kernel.source


@pytest.mark.parametrize("name", ["mm-nvidia", "convolution", "nbody-nvidia"])
def test_compile_benchmark_kernels(benchmark, name):
    bench = get_benchmark(name)
    size_env = dict(bench.sizes["small"])
    stage = bench.stages[0]
    options = CompilerOptions(local_size=stage.local_size)

    def compile_it():
        return compile_kernel(stage.build(size_env), options, memo=False)

    kernel = benchmark(compile_it)
    assert "kernel void" in kernel.source


def test_simplify_shared_subexpressions(benchmark):
    """Rebuilding and re-simplifying a structurally identical index
    expression must be served by hash-consing + the identity-keyed
    simplify memo — the codegen consumes views by rebuilding the same
    index expressions for every access."""
    n = Var("N", Range.natural())

    def rebuild_and_simplify():
        i = Var("i", Range.of(0, n))
        j = Var("j", Range.of(0, Cst(64)))
        flat = Sum([Prod([i, Cst(64)]), j])
        e = Sum(
            [
                Prod([IntDiv(flat, Cst(64)), Cst(64)]),
                Mod(flat, Cst(64)),
                Prod([i, n]),
                Mod(Prod([j, Cst(4)]), Cst(64)),
            ]
        )
        return simplify(e)

    first = rebuild_and_simplify()
    again = benchmark(rebuild_and_simplify)
    # Hash-consing makes the repeats literally the same object.
    assert again is first


@pytest.mark.parametrize("name", ["mm-nvidia"])
def test_compile_memo_hit(benchmark, name):
    """Repeat compiles of a structurally identical program are served by
    the structural-key memo — the dominant figure8 cost is compilation,
    and every lowering recipe/autotune candidate recompiles clones."""
    bench = get_benchmark(name)
    size_env = dict(bench.sizes["small"])
    stage = bench.stages[0]
    options = CompilerOptions(local_size=stage.local_size)
    compile_kernel(stage.build(size_env), options)  # prime the memo

    def compile_it():
        return compile_kernel(stage.build(size_env), options)

    kernel = benchmark(compile_it)
    assert "kernel void" in kernel.source
