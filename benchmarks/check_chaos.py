"""CI chaos gate: injected faults must change *nothing* but timing.

Runs the figure8 evaluation (small size) twice — once fault-free, once
under a deterministic fault plan firing at every injection site (cache
read/write, compile, simulate, verify, backend-run) — each against its
own fresh tuning cache, and asserts:

1. **bitwise-identical results** — every figure cell (relative
   performance, reference cycles, generated cycles) is *exactly* equal
   between the two runs: all recovery paths (in-place retry at
   pre-side-effect sites, the explorer's retry loop, backend fallback)
   are observationally transparent;
2. **faults actually landed** — `faultinject.total_injected() > 0`,
   so a green run cannot mean "the harness was off";
3. **no uncaught exceptions** — both runs complete (any escape fails
   the script outright).

Recoveries are printed (injection counters, cache recovery stats, the
degradation ledger) so the CI log shows what the run survived.

Exit status 0 = pass, 1 = divergence (with a report on stdout).

Usage::

    python benchmarks/check_chaos.py [--plan "seed=11;rate=0.05"]
        [--benchmarks nn gemv ...]

See ``src/repro/RESILIENCE.md`` for the site map and recovery
semantics.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

DEFAULT_PLAN = "seed=11;rate=0.05"


def run_cells(benchmarks, cache_dir):
    from repro.benchsuite.figure8 import run_figure8
    from repro.cache import TuningCache

    cache = TuningCache(cache_dir)
    cells = run_figure8(benchmarks, sizes=("small",), cache=cache)
    return cells, cache


def cell_key(cell) -> tuple:
    return (cell.benchmark, cell.size, cell.level, cell.device)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--plan", default=DEFAULT_PLAN,
        help=f"fault-plan spec for the chaos run (default {DEFAULT_PLAN!r})",
    )
    parser.add_argument(
        "--benchmarks", nargs="+", default=None,
        help="restrict to these figure8 benchmarks (default: all)",
    )
    args = parser.parse_args(argv)

    from repro import faultinject
    from repro.backend import ledger

    plan = faultinject.FaultPlan.parse(args.plan)
    if plan is None:
        print(f"FAIL: plan {args.plan!r} injects nothing")
        return 1

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        tmp = Path(tmp)

        faultinject.clear_plan()
        ledger.clear()
        print(f"[chaos] fault-free run (cache {tmp / 'clean'})")
        clean_cells, _ = run_cells(args.benchmarks, tmp / "clean")

        ledger.clear()
        print(f"[chaos] faulted run: {plan.describe()} (cache {tmp / 'chaos'})")
        faultinject.set_plan(plan)
        try:
            chaos_cells, chaos_cache = run_cells(args.benchmarks, tmp / "chaos")
            injected = faultinject.total_injected()
            site_counts = faultinject.counts()
        finally:
            faultinject.clear_plan()

    failures = []

    clean = {cell_key(c): c for c in clean_cells}
    chaos = {cell_key(c): c for c in chaos_cells}
    if sorted(clean) != sorted(chaos):
        failures.append(
            f"cell sets differ: {sorted(set(clean) ^ set(chaos))}"
        )
    for key in sorted(set(clean) & set(chaos)):
        a, b = clean[key], chaos[key]
        for field in (
            "relative_performance", "reference_cycles", "generated_cycles"
        ):
            va, vb = getattr(a, field), getattr(b, field)
            if va != vb:  # exact: recovery must be bitwise-transparent
                failures.append(
                    f"{'/'.join(key)}: {field} diverged "
                    f"(clean {va!r} vs chaos {vb!r})"
                )

    if injected <= 0:
        failures.append(
            f"plan {plan.describe()} injected no faults — the chaos run "
            "exercised nothing"
        )

    print(f"[chaos] {injected} faults injected")
    for site, c in sorted(site_counts.items()):
        if c.checks:
            print(
                f"[chaos]   {site}: {c.injected}/{c.checks} injected "
                f"({c.recovered} retried in place, {c.escaped} escaped)"
            )
    s = chaos_cache.stats
    print(
        f"[chaos] cache: {s.run_hits} run hits, {s.io_errors} io errors, "
        f"{s.write_skips} write skips, {s.quarantined} quarantined, "
        f"{s.faults_recovered} faults recovered"
    )
    print(f"[chaos] {ledger.summary()}")

    if failures:
        print(f"\nFAIL: {len(failures)} divergence(s) under injected faults")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(
        f"\nOK: {len(chaos)} figure8 cells bitwise-identical under "
        f"plan {plan.describe()}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
