"""CI chaos gate: injected faults must change *nothing* but timing.

Runs the figure8 evaluation (small size) twice — once fault-free, once
under a deterministic fault plan firing at every injection site (cache
read/write, compile, simulate, verify, backend-run) — each against its
own fresh tuning cache, and asserts:

1. **bitwise-identical results** — every figure cell (relative
   performance, reference cycles, generated cycles) is *exactly* equal
   between the two runs: all recovery paths (in-place retry at
   pre-side-effect sites, the explorer's retry loop, backend fallback)
   are observationally transparent;
2. **faults actually landed** — `faultinject.total_injected() > 0`,
   so a green run cannot mean "the harness was off";
3. **no uncaught exceptions** — both runs complete (any escape fails
   the script outright).

Recoveries are printed (injection counters, cache recovery stats, the
degradation ledger) so the CI log shows what the run survived.

With ``--service-soak`` it instead gates the service layer: the
``benchsuite hammer`` soak (concurrent clients, warm races, forced
backpressure, a planted journal orphan, graceful drain) runs under the
same fault plan and must report every response bitwise-identical to the
solo path, faults landed, backpressure exercised, the orphan replayed,
and the breaker/queue state visible in the metrics snapshot.

Exit status 0 = pass, 1 = divergence (with a report on stdout).

Usage::

    python benchmarks/check_chaos.py [--plan "seed=11;rate=0.05"]
        [--benchmarks nn gemv ...]
    python benchmarks/check_chaos.py --service-soak [--clients 8]

See ``src/repro/RESILIENCE.md`` for the site map and recovery
semantics, ``src/repro/SERVICE.md`` for the service guarantees.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

DEFAULT_PLAN = "seed=11;rate=0.05"


def run_cells(benchmarks, cache_dir):
    from repro.benchsuite.figure8 import run_figure8
    from repro.cache import TuningCache

    cache = TuningCache(cache_dir)
    cells = run_figure8(benchmarks, sizes=("small",), cache=cache)
    return cells, cache


def cell_key(cell) -> tuple:
    return (cell.benchmark, cell.size, cell.level, cell.device)


def run_service_soak(plan, clients: int) -> int:
    """The hammer soak as a CI gate: everything the hammer verifies,
    plus "faults actually landed" and "the service surfaced its state
    through the unified metrics snapshot"."""
    from repro import faultinject, obs
    from repro.backend import ledger
    from repro.benchsuite.hammer import format_hammer, run_hammer

    ledger.clear()
    print(f"[chaos] service soak under plan {plan.describe()}")
    faultinject.set_plan(plan)
    try:
        report = run_hammer(clients=clients)
        injected = faultinject.total_injected()
        site_counts = faultinject.counts()
    finally:
        faultinject.clear_plan()
    print(format_hammer(report))

    failures = []
    if not report["ok"]:
        failures.append("hammer verdict FAILED (see report above)")
    if report["mismatches"]:
        failures.append(f"bitwise mismatches: {report['mismatches']}")
    if report["client_errors"]:
        failures.append(f"client errors: {report['client_errors']}")
    if injected <= 0:
        failures.append(
            f"plan {plan.describe()} injected no faults — the soak "
            "exercised nothing"
        )
    if not report["overload_rejected"]:
        failures.append("backpressure never fired (no overload reject)")
    if report["replayed"] < 1:
        failures.append("journal replay never fired (zero orphans replayed)")

    # The breaker/queue state must be observable: the hammer bumps the
    # service counters and the snapshot carries the service section.
    snapshot = obs.snapshot()
    counters = snapshot.get("counters", {})
    for metric in ("service.admits", "service.rejects"):
        if not counters.get(metric):
            failures.append(f"metrics snapshot missing counter {metric!r}")
    if "service.queue_depth" not in snapshot.get("gauges", {}):
        failures.append("metrics snapshot missing gauge 'service.queue_depth'")
    if "active" not in snapshot.get("service", {}):
        failures.append("metrics snapshot missing the 'service' section")

    # The SLO table must be *structurally* present — every quantile key
    # on every observed request class.  No absolute-latency assertions:
    # CI machines are too noisy for wall-clock thresholds, the gate
    # only guarantees the attribution plumbing works.
    slo_rows = report.get("slo") or []
    if not slo_rows:
        failures.append("hammer report carries no SLO table")
    observed = {row.get("class") for row in slo_rows}
    if "cold" not in observed:
        failures.append(
            f"SLO table missing the 'cold' request class (has {sorted(observed)})"
        )
    for row in slo_rows:
        missing = [
            k for k in ("count", "p50_ms", "p95_ms", "p99_ms", "max_ms")
            if row.get(k) is None
        ]
        if missing:
            failures.append(
                f"SLO row {row.get('class')!r} missing {missing}"
            )

    print(f"[chaos] {injected} faults injected")
    for site, c in sorted(site_counts.items()):
        if c.checks:
            print(
                f"[chaos]   {site}: {c.injected}/{c.checks} injected "
                f"({c.recovered} retried in place, {c.escaped} escaped)"
            )
    print(f"[chaos] {ledger.summary()}")

    if failures:
        print(f"\nFAIL: {len(failures)} service-soak violation(s)")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(
        f"\nOK: service soak bitwise-identical under plan "
        f"{plan.describe()} ({report['stats']['completed']} completed, "
        f"{report['stats']['warm_hits']} warm hits, "
        f"{report['replayed']} replayed)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--plan", default=DEFAULT_PLAN,
        help=f"fault-plan spec for the chaos run (default {DEFAULT_PLAN!r})",
    )
    parser.add_argument(
        "--benchmarks", nargs="+", default=None,
        help="restrict to these figure8 benchmarks (default: all)",
    )
    parser.add_argument(
        "--service-soak", action="store_true",
        help="gate the service layer (benchsuite hammer) instead of "
             "the figure8 evaluation",
    )
    parser.add_argument(
        "--clients", type=int, default=8,
        help="concurrent hammer clients for --service-soak",
    )
    args = parser.parse_args(argv)

    from repro import faultinject
    from repro.backend import ledger

    plan = faultinject.FaultPlan.parse(args.plan)
    if plan is None:
        print(f"FAIL: plan {args.plan!r} injects nothing")
        return 1

    if args.service_soak:
        return run_service_soak(plan, args.clients)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        tmp = Path(tmp)

        faultinject.clear_plan()
        ledger.clear()
        print(f"[chaos] fault-free run (cache {tmp / 'clean'})")
        clean_cells, _ = run_cells(args.benchmarks, tmp / "clean")

        ledger.clear()
        print(f"[chaos] faulted run: {plan.describe()} (cache {tmp / 'chaos'})")
        faultinject.set_plan(plan)
        try:
            chaos_cells, chaos_cache = run_cells(args.benchmarks, tmp / "chaos")
            injected = faultinject.total_injected()
            site_counts = faultinject.counts()
        finally:
            faultinject.clear_plan()

    failures = []

    clean = {cell_key(c): c for c in clean_cells}
    chaos = {cell_key(c): c for c in chaos_cells}
    if sorted(clean) != sorted(chaos):
        failures.append(
            f"cell sets differ: {sorted(set(clean) ^ set(chaos))}"
        )
    for key in sorted(set(clean) & set(chaos)):
        a, b = clean[key], chaos[key]
        for field in (
            "relative_performance", "reference_cycles", "generated_cycles"
        ):
            va, vb = getattr(a, field), getattr(b, field)
            if va != vb:  # exact: recovery must be bitwise-transparent
                failures.append(
                    f"{'/'.join(key)}: {field} diverged "
                    f"(clean {va!r} vs chaos {vb!r})"
                )

    if injected <= 0:
        failures.append(
            f"plan {plan.describe()} injected no faults — the chaos run "
            "exercised nothing"
        )

    print(f"[chaos] {injected} faults injected")
    for site, c in sorted(site_counts.items()):
        if c.checks:
            print(
                f"[chaos]   {site}: {c.injected}/{c.checks} injected "
                f"({c.recovered} retried in place, {c.escaped} escaped)"
            )
    s = chaos_cache.stats
    print(
        f"[chaos] cache: {s.run_hits} run hits, {s.io_errors} io errors, "
        f"{s.write_skips} write skips, {s.quarantined} quarantined, "
        f"{s.faults_recovered} faults recovered"
    )
    print(f"[chaos] {ledger.summary()}")

    if failures:
        print(f"\nFAIL: {len(failures)} divergence(s) under injected faults")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(
        f"\nOK: {len(chaos)} figure8 cells bitwise-identical under "
        f"plan {plan.describe()}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
