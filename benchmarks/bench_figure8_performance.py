"""Figure 8: relative performance of Lift-generated kernels.

One benchmark entry per Table 1 row.  Each measures the simulated cycles
of the generated kernel (full optimizations) — the quantity behind the
Figure 8 bars — and asserts correctness plus the paper's qualitative
claims: array-access simplification never hurts, and the full pipeline
reaches a substantial fraction of hand-written performance.

The printed summary (``-s`` to see it) is the Figure 8 table itself.
"""

import numpy as np
import pytest

from repro.benchsuite.common import ALL_BENCHMARKS, get_benchmark
from repro.benchsuite.figure8 import format_figure8, measure_benchmark

_ALL_CELLS = []


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_figure8_benchmark(benchmark, name, sizes):
    bench = get_benchmark(name)
    cells = []
    for size in sizes:
        cells.extend(measure_benchmark(bench, size))
    _ALL_CELLS.extend(cells)

    by_level = {}
    for cell in cells:
        by_level.setdefault(cell.level, []).append(cell.relative_performance)

    # The paper's qualitative claims (section 7.4):
    # enabling array-access simplification never makes things worse ...
    assert min(by_level["all"]) >= min(by_level["none"]) - 1e-9
    # ... and fully optimized code reaches a substantial fraction of the
    # hand-written kernels' performance.
    assert np.mean(by_level["all"]) > 0.6

    def measured():
        return measure_benchmark(bench, sizes[0])

    result = benchmark.pedantic(measured, rounds=1, iterations=1)
    assert result


def test_zz_print_figure8_table(capsys):
    """Prints the assembled Figure 8 after all cells are measured."""
    if _ALL_CELLS:
        with capsys.disabled():
            print()
            print(format_figure8(_ALL_CELLS))
