"""Rewrite-space exploration: search throughput and cache effectiveness.

Tracks the cost of a full derivation-space exploration (enumerate →
dedup → prune → compile → simulate → verify) and what the persistent
:mod:`repro.cache` store buys on a second run.  ``python
benchmarks/bench_explore.py`` regenerates the committed baseline
``BENCH_explore.json`` (candidates enumerated, dedup hit-rate, cache
hit-rate, best-vs-menu cycles, cold vs warm wall time).
"""

import json
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.cache import TuningCache
from repro.benchsuite.explore import explore_benchmark, run_explore


def test_explore_warm_cache_skips_all_recompilation(tmp_path):
    """A second exploration with a warm store performs zero
    recompilations and zero re-executions, and is faster than the cold
    run (the tentpole acceptance criterion)."""
    cache = TuningCache(tmp_path)

    start = time.perf_counter()
    cold = explore_benchmark("nn", depth=2, max_eval=6, cache=cache)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = explore_benchmark("nn", depth=2, max_eval=6, cache=cache)
    warm_seconds = time.perf_counter() - start

    assert cold["stats"]["compilations"] > 0
    assert warm["stats"]["compilations"] == 0
    assert warm["stats"]["executions"] == 0
    assert warm["stats"]["kernel_cache_hit_rate"] == 1.0
    assert warm["stats"]["cycle_cache_hit_rate"] == 1.0
    assert warm["explorer_best_cycles"] == cold["explorer_best_cycles"]
    assert warm_seconds < cold_seconds


def test_explore_warm_throughput(benchmark, tmp_path):
    cache = TuningCache(tmp_path)
    explore_benchmark("nn", depth=2, max_eval=6, cache=cache)  # warm the store

    result = benchmark(
        lambda: explore_benchmark("nn", depth=2, max_eval=6, cache=cache)
    )
    assert result["stats"]["compilations"] == 0


@pytest.mark.parametrize("name", ["gemv", "mm"])
def test_explorer_beats_menu(tmp_path, name):
    cache = TuningCache(tmp_path)
    entry = explore_benchmark(name, depth=3, max_eval=10, cache=cache)
    assert entry["explorer_best_runtime"] <= entry["menu_best_runtime"]


def test_explorer_derives_2d_tiled_mm(tmp_path):
    """The flagship acceptance: the explorer derives a 2-D tiled mm
    schedule (nested mapWrg dims + mapLcl + toLocal) that beats every
    1-D candidate on measured runtime, and the parallelism-aware static
    model ranks it ahead before execution."""
    cache = TuningCache(tmp_path)
    entry = explore_benchmark("mm", depth=2, max_eval=10, cache=cache)
    assert any("tile-2d" in step for step in entry["explorer_best_trace"])
    assert any("toLocal" in step for step in entry["explorer_best_trace"])
    assert entry["winner_local_size"][1] > 1  # a genuinely 2-D launch
    assert entry["winner_static_rank"] == 0
    # The fixed menu reuses the tile-2d strategy for square map nests
    # since the backend-subsystem PR, so parity with a *tiled* menu
    # best is the expected outcome (the explorer must never lose to it).
    assert entry["best_vs_menu"] <= 1.0
    assert entry["menu_best_label"].startswith("tile-2d")


def main(out_path: str = None) -> None:
    out = Path(out_path or Path(__file__).parent / "BENCH_explore.json")
    cache_dir = tempfile.mkdtemp(prefix="repro-explore-bench-")

    start = time.perf_counter()
    cold = run_explore(depth=3, max_eval=12, cache_dir=cache_dir)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_explore(depth=3, max_eval=12, cache_dir=cache_dir)
    warm_seconds = time.perf_counter() - start

    summary = {}
    for c, w in zip(cold["benchmarks"], warm["benchmarks"]):
        summary[c["benchmark"]] = {
            "enumerated": c["stats"]["enumerated"],
            "dedup_hit_rate": c["stats"]["dedup_hit_rate"],
            "best_vs_menu": round(c["best_vs_menu"], 4),
            "explorer_best_runtime": c["explorer_best_runtime"],
            "explorer_best_cycles": c["explorer_best_cycles"],
            "menu_best_runtime": c["menu_best_runtime"],
            "menu_best_cycles": c["menu_best_cycles"],
            "winner_static_rank": c["winner_static_rank"],
            "winner_local_size": c["winner_local_size"],
            "winner_global_size": c["winner_global_size"],
            "best_trace": c["explorer_best_trace"],
            "cold_seconds": c["explore_seconds"],
            "warm_seconds": w["explore_seconds"],
            "warm_compilations": w["stats"]["compilations"],
            "warm_kernel_cache_hit_rate": w["stats"]["kernel_cache_hit_rate"],
            "warm_cycle_cache_hit_rate": w["stats"]["cycle_cache_hit_rate"],
        }

    data = {
        "description": (
            "Rewrite-space exploration baseline: candidates enumerated, "
            "dedup/cache hit-rates and best-vs-menu estimated runtime "
            "(parallelism-aware) per benchmark; last refreshed on the "
            "backend-subsystem PR (the fixed autotune menu now derives "
            "the 2-D tiled mm too, so mm best-vs-menu parity is expected; "
            "the derivation itself is gated via best_trace)."
        ),
        "config": cold["config"],
        "cold_total_seconds": round(cold_seconds, 3),
        "warm_total_seconds": round(warm_seconds, 3),
        "benchmarks": summary,
    }
    out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
