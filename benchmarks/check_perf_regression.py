"""CI gate: fail when simulator or exploration performance regresses.

Absolute work-items/s numbers are machine-dependent (the baselines were
recorded on one box, CI runners are another), so the gate compares
*machine-relative ratios*, which travel:

* **simulator** — for each smoke kernel, the speedup of the compiled
  lane-batched tier over the scalar reference interpreter, measured
  here, must stay within ``TOLERANCE`` (30%) of the same ratio in the
  checked-in ``BENCH_simulator.json``.  A >30% drop means someone made
  the fast path slower (or the scalar path faster without touching the
  fast path — also worth a look).  The fused whole-grid backend is
  additionally gated on SAXPY: its speedup over the compiled tier must
  stay within tolerance of the baseline *and* above the hard
  ``FUSED_MIN_SPEEDUP`` floor (2x) — the fusion win itself.
* **exploration** — given a ``BENCH_explore`` metrics file (produced by
  ``bench_explore.py`` earlier in the CI job), a warm tuning cache must
  still perform **zero** recompilations with full cycle-cache hit
  rates, and the cold/warm wall-clock ratio must stay within
  ``TOLERANCE`` of the checked-in ``BENCH_explore.json`` baseline.
* **explorer quality** — per benchmark, the explorer's best schedule
  must still at least match the fixed menu (``best_vs_menu <= 1``), and
  the derived-mm-vs-menu runtime ratio must stay within ``TOLERANCE``
  of the baseline ratio: if the explorer stops deriving the 2-D tiled
  mm schedule (or the cost model stops preferring it), this gate fails.
  Both sides are simulated cycle estimates, so the ratios are
  machine-independent.

Exit status 0 = pass, 1 = regression (with a report on stdout).

Usage::

    python benchmarks/check_perf_regression.py [--explore-json PATH]
        [--baseline-dir benchmarks]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

TOLERANCE = 0.30

# The measured kernels and launch shapes are the ones bench_simulator.py
# records into BENCH_simulator.json — imported, not duplicated, so the
# gate cannot silently drift from its baseline.
sys.path.insert(0, str(Path(__file__).parent))
from bench_simulator import (  # noqa: E402
    REDUCTION_LOCAL,
    REDUCTION_N,
    REDUCTION_SOURCE,
    SAXPY_LOCAL,
    SAXPY_N,
    SAXPY_SOURCE,
)


def _best_launch_seconds(source, global_size, local_size, make_args,
                         engine, repeats) -> float:
    """Fastest of ``repeats`` launches.

    The minimum estimates the uncontended cost, which is what makes the
    ratio below stable on shared CI runners (a median would fold other
    tenants' noise into the gate).
    """
    from repro.opencl import OpenCLProgram, launch

    program = OpenCLProgram(source)
    launch(program, global_size, local_size, make_args(), engine=engine)
    times = []
    for _ in range(repeats):
        args = make_args()
        t0 = time.perf_counter()
        launch(program, global_size, local_size, args, engine=engine)
        times.append(time.perf_counter() - t0)
    return min(times)


def measure_simulator_speedups() -> dict:
    """``{smoke kernel: compiled-vs-scalar speedup}`` on this machine."""
    from repro.opencl import Buffer

    n = SAXPY_N
    x = Buffer.from_array(np.arange(n, dtype=float))
    y = Buffer.from_array(np.ones(n))

    def saxpy_args():
        return {"x": x, "y": y, "out": Buffer.zeros(n), "a": 2.0, "n": n}

    nr = REDUCTION_N
    xr = Buffer.from_array(np.ones(nr))

    def reduce_args():
        return {"x": xr, "out": Buffer.zeros(nr // REDUCTION_LOCAL)}

    speedups = {}
    saxpy_compiled = None
    for name, source, gsize, lsize, make_args in (
        ("test_simulator_saxpy_throughput", SAXPY_SOURCE, n, SAXPY_LOCAL,
         saxpy_args),
        ("test_simulator_barrier_lockstep_throughput", REDUCTION_SOURCE, nr,
         REDUCTION_LOCAL, reduce_args),
    ):
        scalar = _best_launch_seconds(
            source, gsize, lsize, make_args, "scalar", repeats=5
        )
        compiled = _best_launch_seconds(
            source, gsize, lsize, make_args, "compiled", repeats=60
        )
        if name == "test_simulator_saxpy_throughput":
            saxpy_compiled = compiled
        speedups[name] = scalar / compiled
    # The fusion win: whole-grid fused numpy vs the blocked compiled
    # tier on the straight-line SAXPY kernel (one shared compiled
    # sample keeps both SAXPY ratios consistent).
    fused = _best_launch_seconds(
        SAXPY_SOURCE, n, SAXPY_LOCAL, saxpy_args, "fused", repeats=60
    )
    speedups["saxpy_fused_vs_compiled"] = saxpy_compiled / fused
    return speedups


#: The fused backend must beat the blocked compiled tier by at least
#: this factor on the straight-line SAXPY kernel — a *hard* floor on
#: top of the baseline-relative tolerance: losing the whole-grid
#: fusion win (slice memory traffic, proof-carrying stores, closed-form
#: load accounting) fails CI even if the committed baseline drifts.
FUSED_MIN_SPEEDUP = 2.0


def baseline_simulator_speedups(baseline: dict) -> dict:
    """The engine-speedup ratios recorded in BENCH_simulator.json."""
    benches = baseline["benchmarks"]
    out = {}
    for name in (
        "test_simulator_saxpy_throughput",
        "test_simulator_barrier_lockstep_throughput",
    ):
        scalar = benches[f"{name}[scalar]"]["median_s"]
        compiled = benches[f"{name}[compiled]"]["median_s"]
        out[name] = scalar / compiled
    compiled = benches["test_simulator_saxpy_throughput[compiled]"]["median_s"]
    fused = benches["test_simulator_saxpy_throughput[fused]"]["median_s"]
    out["saxpy_fused_vs_compiled"] = compiled / fused
    return out


def check_simulator(baseline_path: Path) -> list:
    baseline = json.loads(baseline_path.read_text())
    expected = baseline_simulator_speedups(baseline)
    measured = measure_simulator_speedups()
    failures = []
    for name, base_ratio in expected.items():
        now = measured[name]
        floor = (1.0 - TOLERANCE) * base_ratio
        label = (
            "fused/compiled" if name == "saxpy_fused_vs_compiled"
            else "compiled/scalar"
        )
        if name == "saxpy_fused_vs_compiled":
            floor = max(floor, FUSED_MIN_SPEEDUP)
        status = "ok" if now >= floor else "REGRESSION"
        print(
            f"[simulator] {name}: {label} speedup {now:.1f}x "
            f"(baseline {base_ratio:.1f}x, floor {floor:.1f}x) {status}"
        )
        if now < floor:
            failures.append(
                f"{name}: {label} speedup {now:.1f}x below floor {floor:.1f}x"
            )
    return failures


#: Absolute ceiling on one disabled ``obs.span()`` round-trip.  The
#: real cost is a module attribute load plus a shared-singleton context
#: manager (~0.2 µs); the ceiling is an order of magnitude above that
#: so the gate only fires if the fast path gains allocation or locking.
OBS_DISABLED_SPAN_MAX_US = 5.0


def check_obs_overhead() -> list:
    """Gate the observability subsystem's disabled fast path.

    Two guarantees: (1) tracing and profiling are *off* unless
    explicitly enabled — instrumented hot paths must not pay for them
    by default (the SAXPY throughput gate above runs with every span
    call site compiled in, so it implicitly prices the enabled
    attribute loads); (2) a disabled ``span()`` costs roughly a dict
    lookup, not an allocation.
    """
    import os

    from repro import obs

    failures = []
    if not os.environ.get("REPRO_TRACE") and obs.tracing_enabled():
        failures.append("obs: tracing active without REPRO_TRACE set")
    if not os.environ.get("REPRO_PROFILE") and obs.profile.enabled():
        failures.append("obs: profiler active without REPRO_PROFILE set")

    if obs.tracing_enabled():
        print("[obs] tracing enabled via REPRO_TRACE; disabled-path "
              "cost not measured")
        return failures

    calls = 200_000
    t0 = time.perf_counter()
    for _ in range(calls):
        with obs.span("gate", i=0):
            pass
    per_call_us = (time.perf_counter() - t0) / calls * 1e6
    status = "ok" if per_call_us <= OBS_DISABLED_SPAN_MAX_US else "REGRESSION"
    print(
        f"[obs] disabled span(): {per_call_us:.3f} us/call "
        f"(ceiling {OBS_DISABLED_SPAN_MAX_US:.1f} us) {status}"
    )
    if per_call_us > OBS_DISABLED_SPAN_MAX_US:
        failures.append(
            f"obs: disabled span() costs {per_call_us:.3f} us/call, above "
            f"the {OBS_DISABLED_SPAN_MAX_US:.1f} us ceiling — the no-op "
            "fast path regressed"
        )
    return failures


def check_explore(metrics_path: Path, baseline_path: Path) -> list:
    metrics = json.loads(metrics_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    failures = []

    for name, entry in metrics.get("benchmarks", {}).items():
        if entry.get("warm_compilations", 0) != 0:
            failures.append(f"explore[{name}]: warm run recompiled kernels")
        if entry.get("warm_cycle_cache_hit_rate", 0.0) < 1.0:
            failures.append(f"explore[{name}]: warm run re-executed kernels")

        # The flagship derivation is asserted structurally, not through
        # the ratio: the fixed menu also derives the tiled mm schedule
        # now (autotune reuses the tile-2d strategy), so best-vs-menu
        # parity is expected — but the explorer must still *derive*
        # the 2-D tiling itself.
        trace = entry.get("best_trace")
        if name == "mm" and trace is not None:
            if not any("tile-2d" in step for step in trace):
                failures.append(
                    "explore[mm]: explorer best derivation lost the 2-D "
                    "tiled schedule"
                )

        ratio = entry.get("best_vs_menu")
        if ratio is not None and ratio > 1.0 + 1e-9:
            failures.append(
                f"explore[{name}]: explorer best ({ratio:.3f}x menu) worse "
                "than the fixed lowering menu"
            )
        base_entry = baseline.get("benchmarks", {}).get(name, {})
        base_ratio = base_entry.get("best_vs_menu")
        if ratio is not None and base_ratio is not None:
            ceiling = base_ratio * (1.0 + TOLERANCE)
            status = "ok" if ratio <= ceiling else "REGRESSION"
            print(
                f"[explore] {name}: best-vs-menu ratio {ratio:.3f} "
                f"(baseline {base_ratio:.3f}, ceiling {ceiling:.3f}) {status}"
            )
            if ratio > ceiling:
                failures.append(
                    f"explore[{name}]: best-vs-menu ratio {ratio:.3f} above "
                    f"ceiling {ceiling:.3f} — the explorer lost a derived "
                    "schedule (for mm, the 2-D tiled one)"
                )

    cold = metrics.get("cold_total_seconds")
    warm = metrics.get("warm_total_seconds")
    base_cold = baseline.get("cold_total_seconds")
    base_warm = baseline.get("warm_total_seconds")
    if cold and warm and base_cold and base_warm:
        ratio = cold / warm
        base_ratio = base_cold / base_warm
        # The warm leg is a single sub-second measurement (bench_explore
        # runs each pass once), so the wall-clock ratio gets an extra
        # factor of 2 of noise headroom on top of TOLERANCE; the hard
        # guarantees above (zero recompiles, full hit rates) are the
        # deterministic part of this gate.
        floor = (1.0 - TOLERANCE) * base_ratio / 2.0
        status = "ok" if ratio >= floor else "REGRESSION"
        print(
            f"[explore] warm-cache speedup {ratio:.1f}x "
            f"(baseline {base_ratio:.1f}x, floor {floor:.1f}x) {status}"
        )
        if ratio < floor:
            failures.append(
                f"explore: warm speedup {ratio:.1f}x below floor {floor:.1f}x"
            )
    return failures


def check_calibration(metrics_path: Path, floor_path: Path) -> list:
    """Gate the cost model's rank quality on the benchmark menus.

    ``metrics_path`` is a ``--metrics-json`` snapshot from a
    ``benchsuite calibrate`` run; its ``calibration.workloads`` section
    carries per-workload Spearman rank correlation between the static
    prediction and the measured-counter runtime.  The checked-in floors
    (``calibration_floor.json``) are set well below the recorded values
    (~0.9) so noise cannot fire the gate, but a cost-model change that
    scrambles the ranking (correlation collapsing toward zero) fails
    loudly.  Top-5 regret is gated as a hard ceiling: the true best
    schedule must stay inside the model's top-5 shortlist within the
    recorded margin."""
    metrics = json.loads(metrics_path.read_text())
    floors = json.loads(floor_path.read_text())
    workloads = metrics.get("calibration", {}).get("workloads", {})
    failures = []
    for name, floor in floors["spearman_floor"].items():
        entry = workloads.get(name)
        if entry is None or entry.get("spearman") is None:
            failures.append(
                f"calibration[{name}]: no calibration records in "
                f"{metrics_path} — did the calibrate run cover it?"
            )
            continue
        rho = entry["spearman"]
        status = "ok" if rho >= floor else "REGRESSION"
        print(
            f"[calibration] {name}: spearman {rho:.3f} "
            f"(floor {floor:.2f}) {status}"
        )
        if rho < floor:
            failures.append(
                f"calibration[{name}]: rank correlation {rho:.3f} below "
                f"floor {floor:.2f} — the static cost model no longer "
                "ranks candidates the way measured counters do"
            )
    ceiling = floors.get("top5_regret_ceiling")
    if ceiling is not None:
        for name, entry in workloads.items():
            regret = entry.get("top5_regret")
            if regret is None:
                continue
            status = "ok" if regret <= ceiling else "REGRESSION"
            print(
                f"[calibration] {name}: top-5 regret {regret * 100:.1f}% "
                f"(ceiling {ceiling * 100:.0f}%) {status}"
            )
            if regret > ceiling:
                failures.append(
                    f"calibration[{name}]: top-5 regret "
                    f"{regret * 100:.1f}% above the "
                    f"{ceiling * 100:.0f}% ceiling — the true best "
                    "schedule fell out of the model's shortlist"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline-dir", default=Path(__file__).parent, type=Path,
        help="directory holding BENCH_simulator.json / BENCH_explore.json",
    )
    parser.add_argument(
        "--explore-json", default=None, type=Path,
        help="BENCH_explore metrics produced by bench_explore.py in this "
             "run; the explore gate is skipped when absent",
    )
    parser.add_argument(
        "--calibration-json", default=None, type=Path,
        help="metrics snapshot from a `benchsuite calibrate` run; the "
             "calibration gate is skipped when absent",
    )
    args = parser.parse_args(argv)

    failures = check_simulator(args.baseline_dir / "BENCH_simulator.json")
    failures += check_obs_overhead()
    if args.explore_json is not None and args.explore_json.exists():
        failures += check_explore(
            args.explore_json, args.baseline_dir / "BENCH_explore.json"
        )
    elif args.explore_json is not None:
        print(f"[explore] metrics file {args.explore_json} missing; skipped")
    if args.calibration_json is not None and args.calibration_json.exists():
        failures += check_calibration(
            args.calibration_json,
            args.baseline_dir / "calibration_floor.json",
        )
    elif args.calibration_json is not None:
        print(
            f"[calibration] metrics file {args.calibration_json} missing; "
            "skipped"
        )

    if failures:
        print("\nperformance regression gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nperformance regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
