"""Section 7.4's code-size anecdote: disabling array-access
simplification blows up the generated kernel text.

The paper reports multi-megabyte kernels for matrix multiplication; at
our scaled sizes the blow-up factor is smaller but the direction and
mechanism (unsimplified view compositions duplicating whole
subexpressions) are the same.
"""

import pytest

from repro.benchsuite.common import get_benchmark
from repro.compiler import CompilerOptions, compile_kernel


@pytest.mark.parametrize("name", ["convolution", "mm-nvidia", "gemv"])
def test_kernel_size_blowup(benchmark, name):
    bench = get_benchmark(name)
    size_env = dict(bench.sizes["small"])
    stage = bench.stages[0]

    def compile_both():
        optimized = compile_kernel(
            stage.build(size_env), CompilerOptions.all(local_size=stage.local_size)
        )
        naive = compile_kernel(
            stage.build(size_env), CompilerOptions.none(local_size=stage.local_size)
        )
        return len(optimized.source), len(naive.source)

    opt_size, naive_size = benchmark.pedantic(compile_both, rounds=1, iterations=1)
    assert naive_size > opt_size, (
        f"{name}: naive kernel ({naive_size}B) should exceed the "
        f"simplified one ({opt_size}B)"
    )


def test_dot_product_kernel_sizes():
    from tests.programs import partial_dot

    optimized = compile_kernel(
        partial_dot(), CompilerOptions.all(local_size=(64, 1, 1))
    )
    naive = compile_kernel(
        partial_dot(), CompilerOptions.none(local_size=(64, 1, 1))
    )
    assert len(naive.source) > len(optimized.source)
