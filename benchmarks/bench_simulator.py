"""Simulated-device throughput: the execution substrate's own speed.

Tracks how many work-items per second the NDRange simulator executes for
representative kernels — useful for sizing future experiments.  Each
benchmark is parametrized over the execution backend (``scalar``
reference interpreter, ``interp``retive lane-batched walk, ``compiled``
closure pipeline, ``fused`` whole-grid numpy programs) so each
backend's speedup is tracked as a first-class number (baseline:
``BENCH_simulator.json``; regression gate: ``check_perf_regression.py``,
which also gates the fused-vs-compiled SAXPY ratio — the fusion win).
"""

import pytest
import numpy as np

from repro.opencl import Buffer, OpenCLProgram, launch

# Kernel sources and launch shapes are shared with
# check_perf_regression.py so the CI gate always measures exactly what
# the committed BENCH_simulator.json baseline recorded.
SAXPY_SOURCE = """
kernel void SAXPY(const global float * restrict x,
                  const global float * restrict y,
                  global float *out, float a, int n) {
  int i = get_global_id(0);
  if (i < n) { out[i] = a * x[i] + y[i]; }
}
"""
SAXPY_N = 4096
SAXPY_LOCAL = 64

REDUCTION_SOURCE = """
kernel void REDUCE(const global float * restrict x, global float *out) {
  local float tmp[64];
  int l = get_local_id(0);
  tmp[l] = x[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = 32; s > 0; s = s / 2) {
    if (l < s) { tmp[l] = tmp[l] + tmp[l + s]; }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (l < 1) { out[get_group_id(0)] = tmp[0]; }
}
"""
REDUCTION_N = 1024
REDUCTION_LOCAL = 64

ENGINES = ("scalar", "interp", "compiled", "fused")


@pytest.mark.parametrize("engine", ENGINES)
def test_simulator_saxpy_throughput(benchmark, engine):
    n = SAXPY_N
    program = OpenCLProgram(SAXPY_SOURCE)
    x = Buffer.from_array(np.arange(n, dtype=float))
    y = Buffer.from_array(np.ones(n))

    def run():
        out = Buffer.zeros(n)
        launch(program, n, SAXPY_LOCAL,
               {"x": x, "y": y, "out": out, "a": 2.0, "n": n},
               engine=engine)
        return out

    out = benchmark(run)
    benchmark.extra_info["work_items"] = n
    np.testing.assert_allclose(out.data, 2.0 * np.arange(n) + 1)


@pytest.mark.parametrize("engine", ENGINES)
def test_simulator_barrier_lockstep_throughput(benchmark, engine):
    n = REDUCTION_N
    program = OpenCLProgram(REDUCTION_SOURCE)
    x = Buffer.from_array(np.ones(n))

    def run():
        out = Buffer.zeros(n // REDUCTION_LOCAL)
        launch(program, n, REDUCTION_LOCAL, {"x": x, "out": out}, engine=engine)
        return out

    out = benchmark(run)
    benchmark.extra_info["work_items"] = n
    np.testing.assert_allclose(out.data, 64.0)


@pytest.mark.parametrize("engine", ENGINES)
def test_simulator_engines_agree(engine, tmp_path):
    """Both engines produce identical buffers and counters (sanity tie-in
    for the throughput numbers above; the exhaustive check lives in
    tests/test_simt.py)."""
    n = 1024
    program = OpenCLProgram(SAXPY_SOURCE)
    x = Buffer.from_array(np.arange(n, dtype=float))
    y = Buffer.from_array(np.ones(n))
    out = Buffer.zeros(n)
    counters = launch(
        program, n, 64, {"x": x, "y": y, "out": out, "a": 3.0, "n": n},
        engine=engine,
    )
    np.testing.assert_array_equal(out.data, 3.0 * np.arange(n) + 1)
    assert counters.global_loads == 2 * n
    assert counters.global_stores == n
