"""Shared fixtures for the experiment benchmarks."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-sizes",
        action="store_true",
        default=False,
        help="also run the 'large' input sizes (slower)",
    )


@pytest.fixture(scope="session")
def sizes(request):
    if request.config.getoption("--paper-sizes"):
        return ("small", "large")
    return ("small",)
