"""Figure 6: the array-index simplification trace, and simplifier speed.

Checks the paper's exact result (the matrix-transposition index
simplifies to ``l_id * N + wg_id``) and benchmarks the simplifier on the
kind of expressions the view system produces.
"""

from repro.arith import Range, Var, simplify
from repro.arith.expr import IntDiv, Mod, Prod, Sum
from repro.benchsuite.figure6 import check_figure6, figure6_trace, format_figure6


def test_figure6_trace_is_exact(capsys):
    assert check_figure6()
    trace = figure6_trace()
    # line 2 of the figure: wg_id + l_id * N
    m, n = Var("M"), Var("N")
    l_id = Var("l_id", Range.of(0, m))
    wg_id = Var("wg_id", Range.of(0, n))
    assert trace.intermediate == simplify(Sum([wg_id, Prod([l_id, n])]))
    with capsys.disabled():
        print()
        print(format_figure6())


def test_simplifier_throughput(benchmark):
    """Simplify a transposition-style index (the hot path of the
    compiler's array-access generation)."""
    m, n = Var("M"), Var("N")
    wg_id = Var("wg_id", Range.of(0, n))
    l_id = Var("l_id", Range.of(0, m))
    flat = Sum([Prod([wg_id, m]), l_id])
    remapped = Sum([IntDiv(flat, m), Prod([Mod(flat, m), n])])
    raw = Sum([Prod([IntDiv(remapped, n), n]), Mod(remapped, n)])

    result = benchmark(simplify, raw)
    assert result == simplify(Sum([Prod([l_id, n]), wg_id]))
