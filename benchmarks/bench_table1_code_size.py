"""Table 1: code-size comparison (OpenCL vs high-/low-level Lift IL).

Regenerates the paper's Table 1 rows and asserts its headline
observation: the Lift IL programs are substantially shorter than the
hand-written OpenCL kernels, with the low-level IL slightly longer than
the portable high-level IL because it encodes the optimization choices
explicitly (section 7.1).
"""

import pytest

from repro.benchsuite.common import ALL_BENCHMARKS
from repro.benchsuite.table1 import format_table1, run_table1


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_table1_row(benchmark, name):
    def build_row():
        return run_table1([name])[0]

    row = benchmark.pedantic(build_row, rounds=1, iterations=1)
    assert row.loc_opencl > 0
    assert row.loc_high_level > 0
    # Section 7.1: the high-level IL is never longer than the low-level
    # IL, which encodes optimization decisions explicitly.
    assert row.loc_high_level <= row.loc_low_level


def test_table1_aggregate_shape(capsys):
    rows = run_table1()
    # The paper: "The benchmarks in the Lift IL are up to 45x shorter" —
    # with our scaled kernels the high-level IL is still clearly shorter
    # than OpenCL on aggregate.
    total_cl = sum(r.loc_opencl for r in rows)
    total_high = sum(r.loc_high_level for r in rows)
    assert total_high < total_cl
    with capsys.disabled():
        print()
        print(format_table1(rows))
