"""CI gate: validate a Chrome ``trace_event`` file written by repro.obs.

Checks that the document is well-formed (Chrome's JSON Object Format
with a ``traceEvents`` array), that every event carries the fields the
``chrome://tracing`` / Perfetto importers require, that per-thread
``ph:"X"`` complete spans nest by ``ts``/``dur`` containment (partial
overlap means a broken clock or a span leaked across threads), and —
optionally — that a set of required span names is present, so the CI
trace job notices when an instrumented call site is silently removed.

Span *args* can be validated too: ``--require-args NAME:key1,key2``
asserts every event named ``NAME`` carries those keys under ``args``,
so the trace stays joinable with the calibration log and the service's
request classes (``explore.evaluate`` carries engine/workload,
``service.execute`` carries structural_hash/request_class).

Exit status 0 = valid, 1 = invalid (with a report on stdout).

Usage::

    python benchmarks/check_trace.py TRACE.json
        [--require launch plan run ...] [--min-events N]
        [--require-args 'service.execute:structural_hash,request_class']
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Fields every event must carry, per phase type.
_COMMON = ("name", "ph", "pid", "tid")
_BY_PHASE = {
    "X": ("ts", "dur"),  # complete spans
    "i": ("ts", "s"),    # instants
    "M": (),             # metadata (thread_name)
}

#: ts/dur are float microseconds; clock jitter below this is not a
#: containment violation.
_EPSILON_US = 0.5


def validate(
    document: dict, require=(), min_events: int = 1, require_args=None
) -> list:
    """All schema/nesting violations in the document (empty = valid).

    ``require_args`` maps span names to argument keys every event of
    that name must carry under ``args`` (names the events must exist
    at all, like ``require``)."""
    errors = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document has no traceEvents array"]
    if document.get("displayTimeUnit") not in ("ms", "ns"):
        errors.append("displayTimeUnit must be 'ms' or 'ns'")

    spans = []
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event #{i} is not an object")
            continue
        phase = event.get("ph")
        if phase not in _BY_PHASE:
            errors.append(f"event #{i}: unknown phase {phase!r}")
            continue
        for field in _COMMON + _BY_PHASE[phase]:
            if field not in event:
                errors.append(
                    f"event #{i} ({event.get('name')!r}): missing {field!r}"
                )
        if phase == "X":
            ts, dur = event.get("ts"), event.get("dur")
            if not isinstance(ts, (int, float)) or not isinstance(
                dur, (int, float)
            ):
                errors.append(
                    f"event #{i} ({event.get('name')!r}): "
                    "ts/dur must be numbers"
                )
            elif dur < 0:
                errors.append(
                    f"event #{i} ({event.get('name')!r}): negative dur"
                )
            else:
                spans.append(event)

    complete = [e for e in events if isinstance(e, dict) and e.get("ph") == "X"]
    if len(complete) < min_events:
        errors.append(
            f"only {len(complete)} complete spans (need >= {min_events}) — "
            "did the instrumented code paths run?"
        )

    names = {e.get("name") for e in events if isinstance(e, dict)}
    for name in require:
        if name not in names:
            errors.append(f"required span {name!r} absent from the trace")

    for name, keys in (require_args or {}).items():
        matching = [
            e for e in events
            if isinstance(e, dict) and e.get("name") == name
        ]
        if not matching:
            errors.append(
                f"required span {name!r} absent from the trace "
                f"(args {sorted(keys)} unverifiable)"
            )
            continue
        for event in matching:
            span_args = event.get("args")
            if not isinstance(span_args, dict):
                errors.append(f"span {name!r} carries no args dict")
                continue
            missing = sorted(k for k in keys if k not in span_args)
            if missing:
                errors.append(
                    f"span {name!r} missing args {missing} "
                    f"(has {sorted(span_args)})"
                )

    errors += _check_nesting(spans)

    dropped = document.get("otherData", {}).get("droppedEvents", 0)
    if dropped:
        print(f"note: tracer dropped {dropped} events at its buffer cap")
    return errors


def _check_nesting(spans: list) -> list:
    """Per thread, spans must nest: any two either disjoint or one
    containing the other.  Partial overlap cannot render as a flame
    graph and indicates broken instrumentation."""
    errors = []
    by_tid: dict = {}
    for span in spans:
        by_tid.setdefault(span["tid"], []).append(span)
    for tid, group in by_tid.items():
        group.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list = []
        for span in group:
            start, end = span["ts"], span["ts"] + span["dur"]
            while stack and stack[-1][1] <= start + _EPSILON_US:
                stack.pop()
            if stack and end > stack[-1][1] + _EPSILON_US:
                errors.append(
                    f"tid {tid}: span {span['name']!r} "
                    f"[{start:.1f}, {end:.1f}] partially overlaps "
                    f"{stack[-1][2]!r} ending at {stack[-1][1]:.1f}"
                )
                continue
            stack.append((start, end, span["name"]))
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", type=Path, help="trace JSON to validate")
    parser.add_argument(
        "--require", nargs="*", default=[],
        help="span names that must appear in the trace",
    )
    parser.add_argument(
        "--min-events", type=int, default=1,
        help="minimum number of complete spans expected",
    )
    parser.add_argument(
        "--require-args", nargs="*", default=[], metavar="NAME:K1,K2",
        help="span-arg requirements: every event named NAME must carry "
             "args K1, K2, ... (e.g. "
             "'service.execute:structural_hash,request_class')",
    )
    args = parser.parse_args(argv)

    require_args = {}
    for spec in args.require_args:
        name, sep, keys = spec.partition(":")
        if not sep or not name or not keys:
            print(f"trace gate FAILED: bad --require-args spec {spec!r} "
                  "(want NAME:key1,key2)")
            return 1
        require_args.setdefault(name, set()).update(
            k for k in keys.split(",") if k
        )

    try:
        document = json.loads(args.trace.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"trace gate FAILED: cannot read {args.trace}: {exc}")
        return 1

    errors = validate(
        document, require=args.require, min_events=args.min_events,
        require_args=require_args,
    )
    events = document.get("traceEvents") or []
    if errors:
        print(f"trace gate FAILED for {args.trace} ({len(events)} events):")
        for error in errors:
            print(f"  - {error}")
        return 1
    threads = len({e.get("tid") for e in events if isinstance(e, dict)})
    print(
        f"trace gate passed: {args.trace} — {len(events)} events across "
        f"{threads} thread(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
